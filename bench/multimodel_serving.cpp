// Multi-model serving bench: one BatchedEngine multiplexing a TinyLlama
// generator next to a MobileBERT classifier (the paper's own Table 1
// pairing) over ONE shared KV arena, versus the two isolated
// single-model engines time-sharing the same silicon at the same total
// KV budget.
//
// The mixed engine wins twice: the models' weight streams race each
// other's compute on the shared L3 port (one model's sub-phase covers
// the other's prefetch, so decode stalls shrink below what either
// isolated engine can hide), and the idle tail disappears (whichever
// workload drains first stops occupying the grid). The first table
// sweeps every isolated split (a, S-a) of the shared budget; the mixed
// run must meet or beat the BEST split on served requests/s — and under
// the static-split budget policy no model may ever hold more slots than
// its quota (zero cross-model KV leakage, checked and emitted).
//
// The second table reruns a bursty workload (generator burst ahead of a
// late classifier trickle) under each KV budget policy — static split /
// proportional-to-load / watermark borrowing — showing the borrowing
// policies soak up the idle tenant's slots and finish sooner.
//
// --json <path> writes the machine-readable result used by the CI
// perf-regression gate (tools/check_bench_regression.py compares it
// against bench/baselines/multimodel_baseline.json). Stable schema:
//
//   {
//     "schema": "distmcu.multimodel.v1",
//     "freq_hz": F, "total_kv_slots": S,
//     "models": [{"model": "...", "chips": n, "chunk": n, "kv_quota": n}],
//     "mixed": [            // same workload under two budget policies
//       {"policy": "static_split" | "watermark", "total_cycles": n,
//        "requests_per_s": x, "tokens_per_s": x,
//        "kv_cross_leak_slots": 0,   // static: max(0, high_water - quota)
//        "kv_borrowed_slots": n,     // borrowing: sanctioned quota excess
//        "per_model": [{"model": "...", "completed": n,
//          "generated": n, "attributed_cycles": n,
//          "attributed_energy_mj": x, "deadline_misses": n,
//          "kv_quota": n, "kv_high_water": n}]}],
//     "isolated": [{"llama_slots": a, "bert_slots": b, "total_cycles": n,
//                   "requests_per_s": x, "tokens_per_s": x}],
//     "best_isolated_requests_per_s": x,
//     "speedup_vs_best_isolated": x,   // >= 1.0 gated in CI
//     "budget_policies": [{"policy": "...", "total_cycles": n,
//       "requests_per_s": x, "llama_kv_high_water": n,
//       "bert_kv_high_water": n}]
//   }
//
// Integer fields are exact simulated cycles/counts; doubles are emitted
// with enough digits to round-trip. Additive fields may appear in later
// versions; consumers must key on "schema" and ignore unknown keys.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runtime/batched_engine.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/kv_budget.hpp"
#include "runtime/model_registry.hpp"
#include "runtime/scheduler.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

using namespace distmcu;

namespace {

constexpr int kTotalSlots = 4;
constexpr int kLlamaJobs = 8;
constexpr int kBertJobs = 8;
constexpr int kDecodeTokens = 12;

/// Full-width TinyLlama blocks (layer count and vocabulary cut so the
/// functional numerics stay quick). At 4 chips this deployment streams
/// block weights from L3 on every decode step — the regime where both
/// continuous batching and the cross-model overlap buy throughput.
model::TransformerConfig llama_model() {
  auto cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.name = "tinyllama";
  cfg.num_layers = 4;
  cfg.vocab_size = 512;
  cfg.ar_context = 64;
  cfg.prompt_len = 8;
  cfg.validate();
  return cfg;
}

/// MobileBERT blocks (E = F = 512, 4 heads of 128) at the paper's
/// 4-chip deployment, cut to 4 layers and a 16-token sequence; served
/// as prefill-only classification requests (new_tokens == 0).
model::TransformerConfig bert_model() {
  auto cfg = model::TransformerConfig::mobile_bert();
  cfg.num_layers = 4;
  cfg.vocab_size = 512;
  cfg.ar_context = 16;
  cfg.prompt_len = 16;
  cfg.validate();
  return cfg;
}

std::vector<int> llama_prompt(int i) {
  return {1 + i, 7 + i % 3, 3, 9, 2 + i % 5, 5};
}

std::vector<int> bert_prompt(int i) {
  std::vector<int> p;
  for (int t = 0; t < 16; ++t) p.push_back(1 + (7 * i + 3 * t) % 500);
  return p;
}

struct MixedResult {
  runtime::KvBudget policy{};
  runtime::ServingStats stats;
  double requests_per_s = 0.0;
  double tokens_per_s = 0.0;
  /// Static split: slots a model held beyond its quota — must be zero
  /// (the budget never hands one model's share to another). Borrowing
  /// policies report the same excess as kv_borrowed_slots instead: a
  /// sanctioned loan of idle capacity, returned at completion.
  int leak_slots = 0;
  int borrowed_slots = 0;
};

/// The headline mixed workload: all jobs queued up front, FIFO
/// admission, the budget policy under test partitioning the arena.
MixedResult run_mixed(const runtime::InferenceSession& llama,
                      const runtime::InferenceSession& bert,
                      runtime::KvBudget policy, double freq_hz) {
  runtime::ModelRegistry reg;
  const auto lid = reg.add(llama, "tinyllama", /*prefill_chunk_tokens=*/4,
                           /*kv_quota=*/2);
  const auto bid = reg.add(bert, "mobilebert", /*prefill_chunk_tokens=*/8,
                           /*kv_quota=*/2);
  runtime::BatchedEngine engine(reg,
                                {.total_kv_slots = kTotalSlots,
                                 .max_pending = 64,
                                 .kv_budget = runtime::make_kv_budget(policy)});
  for (int i = 0; i < std::max(kLlamaJobs, kBertJobs); ++i) {
    // Interleaved submit order so neither model owns the queue head.
    if (i < kLlamaJobs) {
      (void)*engine.submit(lid, llama_prompt(i), kDecodeTokens);
    }
    if (i < kBertJobs) {
      (void)*engine.submit(bid, bert_prompt(i), 0);
    }
  }
  (void)engine.run_to_completion();
  MixedResult out;
  out.policy = policy;
  out.stats = engine.stats();
  const double secs = util::cycles_to_s(out.stats.total_cycles, freq_hz);
  out.requests_per_s = static_cast<double>(out.stats.completed) / secs;
  out.tokens_per_s = out.stats.aggregate_tokens_per_s(freq_hz);
  for (const auto& pm : out.stats.per_model) {
    const int excess = std::max(0, pm.kv_in_use_high_water - pm.kv_quota);
    if (policy == runtime::KvBudget::static_split) {
      out.leak_slots += excess;
    } else {
      out.borrowed_slots += excess;
    }
  }
  return out;
}

struct IsolatedRow {
  int llama_slots = 0;
  int bert_slots = 0;
  Cycles total_cycles = 0;
  double requests_per_s = 0.0;
  double tokens_per_s = 0.0;
};

/// Isolated baseline at one split: each model gets its own engine with
/// its share of the KV slots; the two serve their workloads one after
/// the other on the same grid (no co-scheduling, no cross-model
/// overlap), so the cost is the sum of the two engines' cycles.
IsolatedRow run_isolated(const runtime::InferenceSession& llama,
                         const runtime::InferenceSession& bert,
                         int llama_slots, double freq_hz) {
  IsolatedRow row;
  row.llama_slots = llama_slots;
  row.bert_slots = kTotalSlots - llama_slots;

  runtime::BatchedEngine lengine(
      llama, {.max_batch = llama_slots,
              .max_pending = 64,
              .prefill_chunk_tokens = 4});
  for (int i = 0; i < kLlamaJobs; ++i) {
    (void)*lengine.submit(llama_prompt(i), kDecodeTokens);
  }
  (void)lengine.run_to_completion();

  runtime::BatchedEngine bengine(
      bert, {.max_batch = row.bert_slots,
             .max_pending = 64,
             .prefill_chunk_tokens = 8});
  for (int i = 0; i < kBertJobs; ++i) {
    (void)*bengine.submit(bert_prompt(i), 0);
  }
  (void)bengine.run_to_completion();

  row.total_cycles =
      lengine.stats().total_cycles + bengine.stats().total_cycles;
  const double secs = util::cycles_to_s(row.total_cycles, freq_hz);
  row.requests_per_s =
      static_cast<double>(lengine.stats().completed +
                          bengine.stats().completed) /
      secs;
  row.tokens_per_s =
      static_cast<double>(lengine.stats().total_generated +
                          bengine.stats().total_generated) /
      secs;
  return row;
}

struct PolicyRow {
  runtime::KvBudget policy{};
  runtime::ServingStats stats;
  double requests_per_s = 0.0;
};

/// Bursty workload for the budget-policy table: a generator burst is
/// queued up front while the classifier trickles in late, so a
/// borrowing policy can lend the idle classifier slots to the burst.
PolicyRow run_policy_scenario(const runtime::InferenceSession& llama,
                              const runtime::InferenceSession& bert,
                              runtime::KvBudget policy, double freq_hz) {
  runtime::ModelRegistry reg;
  const auto lid = reg.add(llama, "tinyllama", 4, /*kv_quota=*/2);
  const auto bid = reg.add(bert, "mobilebert", 8, /*kv_quota=*/2);
  runtime::BatchedEngine engine(
      reg, {.total_kv_slots = kTotalSlots,
            .max_pending = 64,
            .kv_budget = runtime::make_kv_budget(policy)});
  for (int i = 0; i < kLlamaJobs; ++i) {
    (void)*engine.submit(lid, llama_prompt(i), kDecodeTokens);
  }
  // The classifier jobs arrive once the burst is underway.
  int submitted_bert = 0;
  int steps = 0;
  bool work = true;
  while (work || submitted_bert < 2) {
    if (steps >= 12 && submitted_bert < 2) {
      (void)*engine.submit(bid, bert_prompt(submitted_bert), 0);
      ++submitted_bert;
    }
    work = engine.step();
    ++steps;
    util::check(steps < 10000, "policy scenario did not drain");
  }
  PolicyRow row;
  row.policy = policy;
  row.stats = engine.stats();
  row.requests_per_s =
      static_cast<double>(row.stats.completed) /
      util::cycles_to_s(row.stats.total_cycles, freq_hz);
  return row;
}

void write_json(const std::string& path, double freq_hz,
                const std::vector<MixedResult>& mixed_rows,
                double headline_rps,
                const std::vector<IsolatedRow>& isolated,
                double best_isolated_rps,
                const std::vector<PolicyRow>& policies) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot open --json path " << path << "\n";
    std::exit(2);
  }
  os.precision(17);
  os << "{\n  \"schema\": \"distmcu.multimodel.v1\",\n"
     << "  \"freq_hz\": " << freq_hz << ",\n"
     << "  \"total_kv_slots\": " << kTotalSlots << ",\n  \"models\": [\n"
     << "    {\"model\": \"tinyllama\", \"chips\": 4, \"chunk\": 4, "
        "\"kv_quota\": 2},\n"
     << "    {\"model\": \"mobilebert\", \"chips\": 4, \"chunk\": 8, "
        "\"kv_quota\": 2}\n  ],\n";
  os << "  \"mixed\": [";
  for (std::size_t i = 0; i < mixed_rows.size(); ++i) {
    const MixedResult& mixed = mixed_rows[i];
    os << (i == 0 ? "" : ",") << "\n    {\"policy\": \""
       << runtime::kv_budget_name(mixed.policy) << "\""
       << ", \"total_cycles\": " << mixed.stats.total_cycles
       << ", \"requests_per_s\": " << mixed.requests_per_s
       << ", \"tokens_per_s\": " << mixed.tokens_per_s
       << ", \"kv_cross_leak_slots\": " << mixed.leak_slots
       << ", \"kv_borrowed_slots\": " << mixed.borrowed_slots
       << ",\n     \"per_model\": [";
    for (std::size_t m = 0; m < mixed.stats.per_model.size(); ++m) {
      const auto& pm = mixed.stats.per_model[m];
      os << (m == 0 ? "" : ",") << "\n       {\"model\": \""
         << bench::json_escape(pm.model)
         << "\", \"completed\": " << pm.completed
         << ", \"generated\": " << pm.total_generated
         << ", \"attributed_cycles\": " << pm.attributed_cycles
         << ", \"attributed_energy_mj\": " << pm.attributed_energy_mj
         << ", \"deadline_misses\": " << pm.deadline_misses
         << ", \"kv_quota\": " << pm.kv_quota
         << ", \"kv_high_water\": " << pm.kv_in_use_high_water << "}";
    }
    os << "\n    ]}";
  }
  os << "\n  ],\n  \"isolated\": [";
  for (std::size_t i = 0; i < isolated.size(); ++i) {
    const auto& r = isolated[i];
    os << (i == 0 ? "" : ",") << "\n    {\"llama_slots\": " << r.llama_slots
       << ", \"bert_slots\": " << r.bert_slots
       << ", \"total_cycles\": " << r.total_cycles
       << ", \"requests_per_s\": " << r.requests_per_s
       << ", \"tokens_per_s\": " << r.tokens_per_s << "}";
  }
  os << "\n  ],\n  \"best_isolated_requests_per_s\": " << best_isolated_rps
     << ",\n  \"speedup_vs_best_isolated\": "
     << headline_rps / best_isolated_rps
     << ",\n  \"budget_policies\": [";
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const auto& p = policies[i];
    os << (i == 0 ? "" : ",") << "\n    {\"policy\": \""
       << runtime::kv_budget_name(p.policy) << "\""
       << ", \"total_cycles\": " << p.stats.total_cycles
       << ", \"requests_per_s\": " << p.requests_per_s
       << ", \"llama_kv_high_water\": "
       << p.stats.per_model[0].kv_in_use_high_water
       << ", \"bert_kv_high_water\": "
       << p.stats.per_model[1].kv_in_use_high_water << "}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  const double freq_hz = 500e6;

  const runtime::InferenceSession llama(llama_model(), 4);
  const runtime::InferenceSession bert(bert_model(), 4);

  std::cout << "Multi-model serving — " << kLlamaJobs << " TinyLlama "
            << "generations (" << kDecodeTokens << " tokens) + " << kBertJobs
            << " MobileBERT classifications through " << kTotalSlots
            << " shared KV slots\n\n";

  // --- mixed engine (two budget policies) vs every isolated split --------
  // The static-split run proves the zero-leakage discipline; the
  // watermark run is the headline throughput number — the shared arena
  // adapts to the llama-heavy workload instead of idling bert's share.
  const std::vector<MixedResult> mixed_rows = {
      run_mixed(llama, bert, runtime::KvBudget::static_split, freq_hz),
      run_mixed(llama, bert, runtime::KvBudget::watermark, freq_hz)};
  const MixedResult& mixed_static = mixed_rows[0];
  const MixedResult& mixed_headline = mixed_rows[1];

  util::Table table({"serving", "llama_slots", "bert_slots", "total_mcyc",
                     "requests_per_s", "llama_tok_per_s"});
  std::vector<IsolatedRow> isolated;
  double best_isolated_rps = 0.0;
  for (int a = 1; a < kTotalSlots; ++a) {
    const IsolatedRow row = run_isolated(llama, bert, a, freq_hz);
    best_isolated_rps = std::max(best_isolated_rps, row.requests_per_s);
    table.row()
        .add("isolated")
        .add(row.llama_slots)
        .add(row.bert_slots)
        .add(static_cast<double>(row.total_cycles) / 1e6, 2)
        .add(row.requests_per_s, 1)
        .add(row.tokens_per_s, 1);
    isolated.push_back(row);
  }
  for (const MixedResult& mixed : mixed_rows) {
    table.row()
        .add(std::string("mixed/") + runtime::kv_budget_name(mixed.policy))
        .add("-")
        .add("-")
        .add(static_cast<double>(mixed.stats.total_cycles) / 1e6, 2)
        .add(mixed.requests_per_s, 1)
        .add(mixed.tokens_per_s, 1);
  }
  table.print(std::cout);
  std::cout << "\nmixed co-schedules both models on one engine: each model's "
               "weight stream\nraces the other model's compute on the shared "
               "L3 port, and neither workload\nleaves the grid idle while the "
               "other drains. speedup vs best isolated split: "
            << mixed_headline.requests_per_s / best_isolated_rps << "x\n";

  std::cout << "\nPer-model attribution (mixed, watermark):\n\n";
  util::Table per_model({"model", "completed", "generated", "attr_mcyc",
                         "attr_mj", "kv_quota", "kv_high_water"});
  for (const auto& pm : mixed_headline.stats.per_model) {
    per_model.row()
        .add(pm.model)
        .add(pm.completed)
        .add(pm.total_generated)
        .add(static_cast<double>(pm.attributed_cycles) / 1e6, 2)
        .add(pm.attributed_energy_mj, 3)
        .add(pm.kv_quota)
        .add(pm.kv_in_use_high_water);
  }
  per_model.print(std::cout);
  std::cout << "\nkv_cross_leak_slots = " << mixed_static.leak_slots
            << " (static split: no model ever held more than its quota); "
            << "the watermark run\nborrowed "
            << mixed_headline.borrowed_slots
            << " sanctioned slot(s) of idle capacity instead.\n";

  // --- budget policies on the bursty workload ----------------------------
  std::cout << "\nKV budget policies — " << kLlamaJobs
            << "-job generator burst, classifier arriving late:\n\n";
  util::Table policy_table({"policy", "total_mcyc", "requests_per_s",
                            "llama_kv_hw", "bert_kv_hw"});
  std::vector<PolicyRow> policies;
  for (const auto policy :
       {runtime::KvBudget::static_split, runtime::KvBudget::proportional,
        runtime::KvBudget::watermark}) {
    const PolicyRow row = run_policy_scenario(llama, bert, policy, freq_hz);
    policy_table.row()
        .add(runtime::kv_budget_name(row.policy))
        .add(static_cast<double>(row.stats.total_cycles) / 1e6, 2)
        .add(row.requests_per_s, 1)
        .add(row.stats.per_model[0].kv_in_use_high_water)
        .add(row.stats.per_model[1].kv_in_use_high_water);
    policies.push_back(row);
  }
  policy_table.print(std::cout);
  std::cout << "\nborrowing policies lend the idle classifier slots to the "
               "generator burst\n(llama_kv_hw > its quota) and return them "
               "when the classifier arrives.\n";

  // --- self-gate ---------------------------------------------------------
  bool ok = true;
  if (mixed_headline.requests_per_s < best_isolated_rps) {
    std::cout << "FAIL: mixed requests/s " << mixed_headline.requests_per_s
              << " below best isolated " << best_isolated_rps << "\n";
    ok = false;
  }
  if (mixed_static.leak_slots != 0) {
    std::cout << "FAIL: static split leaked " << mixed_static.leak_slots
              << " KV slots across models\n";
    ok = false;
  }

  std::cout << "\nCSV:\n";
  table.write_csv(std::cout);
  policy_table.write_csv(std::cout);

  if (!json_path.empty()) {
    write_json(json_path, freq_hz, mixed_rows, mixed_headline.requests_per_s,
               isolated, best_isolated_rps, policies);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return ok ? 0 : 1;
}
