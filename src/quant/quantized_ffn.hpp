#ifndef DISTMCU_QUANT_QUANTIZED_FFN_HPP
#define DISTMCU_QUANT_QUANTIZED_FFN_HPP

#include <cstdint>
#include <vector>

#include "model/config.hpp"
#include "model/tensor.hpp"
#include "noc/topology.hpp"
#include "partition/plan.hpp"
#include "partition/sharder.hpp"
#include "quant/quantize.hpp"

namespace distmcu::quant {

/// Distributed **integer** execution of the FFN sublayer — the
/// Deeploy-style deployment path the paper actually ships (A8W8 integer
/// kernels on the Siracusa cluster), applied to the partitioning scheme:
///
///   * per chip: int8 GEMM (x * W1 shard) with int32 accumulation,
///     float-side activation, requantization, int8 GEMM (hidden * W2
///     shard) producing an int32 partial output;
///   * the partial outputs all-reduce over the hierarchical topology in
///     int32 — which, unlike float, is **reduction-order invariant**:
///     any tree shape yields bit-identical results (property-tested);
///   * the root dequantizes once.
///
/// Weights are statically quantized per tensor at construction;
/// activations use per-invocation dynamic scales (calibration-free,
/// keeps the path self-contained).
class QuantizedDistributedFfn {
 public:
  QuantizedDistributedFfn(const model::TransformerConfig& cfg,
                          const partition::ShardedWeights& shards,
                          const partition::PartitionPlan& plan,
                          const noc::Topology& topo);

  /// Run the FFN over x [S, E]; returns the dequantized float output of
  /// the all-reduced partials (sublayer only — no skip/norm).
  [[nodiscard]] model::Tensor forward(const model::Tensor& x) const;

  /// Raw int32 partials after the reduce (for bit-exactness tests).
  [[nodiscard]] std::vector<std::int32_t> forward_raw(const model::Tensor& x,
                                                      float* out_scale) const;

 private:
  struct ChipShard {
    std::vector<std::int8_t> w1;  // [E, fw] column slice
    std::vector<std::int8_t> w2;  // [fw, E] row slice
    QuantParams w1_params;
    QuantParams w2_params;
    int fw = 0;
  };

  // Owned by value: a deployment may outlive the construction scope
  // that held the config/plan/topology lvalues (the registry's owned
  // sessions do), so holding const& here was a dangling-reference trap.
  // All three are small value types; the heavy state (the quantized
  // shards) already lives in chips_.
  model::TransformerConfig cfg_;
  partition::PartitionPlan plan_;
  noc::Topology topo_;
  QuantParams w2_shared_params_;  // shared so partials share one scale
  std::vector<ChipShard> chips_;
};

}  // namespace distmcu::quant

#endif  // DISTMCU_QUANT_QUANTIZED_FFN_HPP
