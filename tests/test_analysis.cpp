// Static deployment verifier suite:
//  * one golden test per diagnostic code — a seeded-bad configuration
//    must trigger exactly that code (and nothing else),
//  * strict-mode construction — configs that previously aborted at
//    runtime (PlanError mid-construction, Error at submit) are refused
//    at construction with the structured code, and a trace-lane
//    collision plain construction accepts is refused too,
//  * a randomized cross-check of the analyzer/engine equivalence: a
//    config the analyzer passes as clean constructs and drains the
//    serving-invariant conservation checks, and a config carrying a
//    CFG/KV/MEM error-severity diagnostic fails construction.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/deployment_analyzer.hpp"
#include "invariant_env.hpp"
#include "runtime/batched_engine.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/kv_budget.hpp"
#include "runtime/model_registry.hpp"
#include "util/rng.hpp"

using namespace distmcu;
using analysis::AnalysisError;
using analysis::AnalysisReport;
using analysis::DeploymentAnalyzer;
using analysis::Workload;
using runtime::BatchedEngine;
using runtime::InferenceSession;
using runtime::ModelRegistry;

namespace {

using distmcu::testing::invariant_seed_count;
using distmcu::testing::SeedReproLog;

model::TransformerConfig tiny_cfg(int ar_context, int prompt_len) {
  model::TransformerConfig cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.embed_dim = 32;
  cfg.ffn_dim = 64;
  cfg.num_heads = 4;
  cfg.head_dim = 8;
  cfg.num_layers = 2;
  cfg.vocab_size = 100;
  cfg.ar_context = ar_context;
  cfg.prompt_len = prompt_len;
  cfg.validate();
  return cfg;
}

/// Full-width blocks on 4 chips: decode weights stream from L3 every
/// step, so shallow batches are stall-bound (the DMCU-PORT-003 regime).
model::TransformerConfig streamed_cfg() {
  model::TransformerConfig cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.num_layers = 2;
  cfg.vocab_size = 200;
  cfg.ar_context = 32;
  cfg.prompt_len = 6;
  cfg.validate();
  return cfg;
}

/// Suite-wide sessions (weights + plan + sharding are expensive).
const InferenceSession& tiny_session() {
  static const InferenceSession s(tiny_cfg(/*ar_context=*/24, /*prompt_len=*/6),
                                  4);
  return s;
}

const InferenceSession& streamed_session() {
  static const InferenceSession s(streamed_cfg(), 4);
  return s;
}

AnalysisReport analyze(const ModelRegistry& reg,
                       BatchedEngine::MultiOptions opts,
                       const Workload* wl = nullptr) {
  return DeploymentAnalyzer::analyze(reg, opts, wl);
}

/// The golden-test contract: the report's distinct code set is exactly
/// {code}.
void expect_exactly(const AnalysisReport& rep, const char* code) {
  ASSERT_FALSE(rep.diagnostics.empty()) << rep.to_text();
  EXPECT_EQ(rep.codes(), std::vector<std::string>{code}) << rep.to_text();
}

// ---------------------------------------------------------------------
// Golden tests: one seeded-bad config per diagnostic code.
// ---------------------------------------------------------------------

TEST(AnalysisGolden, CfgMalformedOptions) {
  ModelRegistry reg;
  (void)reg.add(tiny_session(), "tiny");
  const auto rep = analyze(reg, {.total_kv_slots = 0});
  expect_exactly(rep, analysis::kCfgMalformed);
  EXPECT_EQ(rep.errors(), 1);

  const auto rep2 = analyze(reg, {.total_kv_slots = 2, .max_pending = -1});
  expect_exactly(rep2, analysis::kCfgMalformed);

  const auto rep3 = analyze(ModelRegistry{}, {.total_kv_slots = 2});
  expect_exactly(rep3, analysis::kCfgMalformed);
}

TEST(AnalysisGolden, MemOverflowPooledKv) {
  // A fully L2-resident tiny model whose pooled KV cannot scale to a
  // 4096-set cap: the per-tenant fit check must overflow.
  ModelRegistry reg;
  (void)reg.add(tiny_session(), "tiny", /*prefill_chunk_tokens=*/0,
                /*kv_quota=*/4096, /*max_resident=*/4096);
  const auto rep = analyze(reg, {.total_kv_slots = 4096});
  expect_exactly(rep, analysis::kMemOverflow);
  EXPECT_GE(rep.errors(), 1);
}

TEST(AnalysisGolden, KvBudgetOversubscribed) {
  ModelRegistry reg;
  (void)reg.add(tiny_session(), "a", 0, /*kv_quota=*/3);
  (void)reg.add(tiny_session(), "b", 0, /*kv_quota=*/2);
  const auto rep = analyze(reg, {.total_kv_slots = 4});
  expect_exactly(rep, analysis::kKvBudget);

  // No derivable reserve: 2 slots across three unset-quota deployments.
  ModelRegistry reg2;
  (void)reg2.add(tiny_session(), "a");
  (void)reg2.add(tiny_session(), "b");
  (void)reg2.add(tiny_session(), "c");
  const auto rep2 = analyze(reg2, {.total_kv_slots = 2});
  expect_exactly(rep2, analysis::kKvBudget);
}

TEST(AnalysisGolden, KvBudgetPhantomReserveWarns) {
  // quota 3 but max_resident 1: the 2-slot phantom reserve can never be
  // occupied. Runs (warning), but flagged.
  ModelRegistry reg;
  (void)reg.add(tiny_session(), "a", 0, /*kv_quota=*/3, /*max_resident=*/1);
  (void)reg.add(tiny_session(), "b", 0, /*kv_quota=*/1);
  const auto rep = analyze(
      reg, {.total_kv_slots = 4,
            .kv_budget = runtime::make_kv_budget(runtime::KvBudget::watermark)});
  expect_exactly(rep, analysis::kKvBudget);
  EXPECT_EQ(rep.errors(), 0) << rep.to_text();
  EXPECT_EQ(rep.warnings(), 1);
  EXPECT_TRUE(rep.ok());
}

TEST(AnalysisGolden, PortOversubscribedWarns) {
  // Full-width streamed deployment at batch 1: the per-step weight
  // stream exceeds one request's compute, so steady-state decode can
  // never hide it.
  ModelRegistry reg;
  (void)reg.add(streamed_session(), "streamed", 0, /*kv_quota=*/1,
                /*max_resident=*/1);
  const auto rep = analyze(reg, {.total_kv_slots = 1});
  expect_exactly(rep, analysis::kPortOversub);
  EXPECT_EQ(rep.errors(), 0) << rep.to_text();
  EXPECT_TRUE(rep.ok());
}

TEST(AnalysisGolden, SloInfeasibleDeadline) {
  ModelRegistry reg;
  (void)reg.add(tiny_session(), "tiny", 0, /*kv_quota=*/2,
                /*max_resident=*/2);
  Workload wl;
  wl.requests.push_back({.model = 0,
                         .prompt_tokens = 6,
                         .new_tokens = 4,
                         .deadline_cycles = 1,
                         .count = 1});
  const auto rep = analyze(reg, {.total_kv_slots = 2}, &wl);
  expect_exactly(rep, analysis::kSloInfeasible);
}

TEST(AnalysisGolden, TraceLaneCollision) {
  // Distinct registry names that collapse to one trace-lane/stats key.
  ModelRegistry reg;
  (void)reg.add(tiny_session(), "tiny-llama", 0, 1, 1);
  (void)reg.add(tiny_session(), "tiny_llama", 0, 1, 1);
  const auto rep = analyze(reg, {.total_kv_slots = 2});
  expect_exactly(rep, analysis::kTraceCollision);

  ModelRegistry reg2;
  (void)reg2.add(tiny_session(), "bad name!", 0, 1, 1);
  const auto rep2 = analyze(reg2, {.total_kv_slots = 1});
  expect_exactly(rep2, analysis::kTraceCollision);
}

TEST(AnalysisGolden, RequestShape) {
  ModelRegistry reg;
  (void)reg.add(tiny_session(), "tiny", 0, /*kv_quota=*/2,
                /*max_resident=*/2);
  Workload wl;
  // Exactly submit()'s throw set: prompt beyond the static prefill
  // shape, context overflow, empty prompt, negative new_tokens,
  // unknown model.
  wl.requests.push_back({.model = 0, .prompt_tokens = 10, .new_tokens = 1});
  wl.requests.push_back({.model = 0, .prompt_tokens = 6, .new_tokens = 30});
  wl.requests.push_back({.model = 0, .prompt_tokens = 0, .new_tokens = 1});
  wl.requests.push_back({.model = 0, .prompt_tokens = 2, .new_tokens = -1});
  wl.requests.push_back({.model = 7, .prompt_tokens = 2, .new_tokens = 1});
  const auto rep = analyze(reg, {.total_kv_slots = 2}, &wl);
  expect_exactly(rep, analysis::kRequestShape);
  EXPECT_EQ(rep.errors(), 5) << rep.to_text();
}

TEST(AnalysisGolden, PagedConfig) {
  ModelRegistry reg;
  (void)reg.add(tiny_session(), "tiny", /*prefill_chunk_tokens=*/2,
                /*kv_quota=*/4, /*max_resident=*/4);

  // Negative page size: error (the engine's constructor check).
  const auto rep = analyze(reg, {.total_kv_slots = 4, .kv_page_tokens = -1});
  expect_exactly(rep, analysis::kPagedConfig);
  EXPECT_GE(rep.errors(), 1);

  // prefix_sharing without paging: the flag is silently ignored by the
  // slot engine — sound, but flagged.
  const auto rep2 =
      analyze(reg, {.total_kv_slots = 4, .prefix_sharing = true});
  expect_exactly(rep2, analysis::kPagedConfig);
  EXPECT_EQ(rep2.errors(), 0) << rep2.to_text();
  EXPECT_EQ(rep2.warnings(), 1);
  EXPECT_TRUE(rep2.ok());

  // A workload sequence whose full KV (prompt rows plus all but the
  // last decode row: 6 + 17 = 23 rows -> 6 four-token pages) exceeds
  // the tenant's 4-page cap: submit()'s livelock guard, statically.
  Workload wl;
  wl.requests.push_back({.model = 0, .prompt_tokens = 6, .new_tokens = 18});
  const auto rep3 =
      analyze(reg, {.total_kv_slots = 4, .kv_page_tokens = 4}, &wl);
  expect_exactly(rep3, analysis::kPagedConfig);
  EXPECT_EQ(rep3.errors(), 1) << rep3.to_text();

  // The same sequence under an 8-page cap fits: clean.
  ModelRegistry reg8;
  (void)reg8.add(tiny_session(), "tiny", /*prefill_chunk_tokens=*/2,
                 /*kv_quota=*/8, /*max_resident=*/8);
  const auto rep4 =
      analyze(reg8, {.total_kv_slots = 8, .kv_page_tokens = 4}, &wl);
  EXPECT_TRUE(rep4.ok()) << rep4.to_text();
  EXPECT_TRUE(rep4.codes().empty()) << rep4.to_text();
}

// ---------------------------------------------------------------------
// Report surfaces.
// ---------------------------------------------------------------------

TEST(AnalysisReportTest, CleanAndTextForms) {
  ModelRegistry reg;
  (void)reg.add(tiny_session(), "tiny", 0, 2, 2);
  const auto rep = analyze(reg, {.total_kv_slots = 2});
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.errors(), 0);
  EXPECT_EQ(rep.warnings(), 0);
  EXPECT_TRUE(rep.codes().empty());
  EXPECT_NE(rep.to_text().find("clean"), std::string::npos);

  const auto bad = analyze(reg, {.total_kv_slots = 0});
  const std::string text = bad.to_text();
  EXPECT_NE(text.find("DMCU-CFG-000"), std::string::npos);
  EXPECT_NE(text.find("error["), std::string::npos);
  EXPECT_NE(text.find("hint:"), std::string::npos);
}

// ---------------------------------------------------------------------
// Strict-mode construction.
// ---------------------------------------------------------------------

TEST(AnalysisStrict, MemOverflowRefusedWithCode) {
  // Previously runtime-aborting: plain construction dies mid-build with
  // an unstructured PlanError from the pooled-KV fit check; strict mode
  // refuses the same config up front with the structured code.
  BatchedEngine::Options opts;
  opts.max_batch = 4096;
  EXPECT_THROW(BatchedEngine(tiny_session(), opts), PlanError);

  opts.strict = true;
  try {
    BatchedEngine engine(tiny_session(), opts);
    FAIL() << "strict construction accepted an unsound deployment";
  } catch (const AnalysisError& e) {
    EXPECT_TRUE(e.report().has(analysis::kMemOverflow)) << e.what();
    EXPECT_GE(e.report().errors(), 1);
    EXPECT_NE(std::string(e.what()).find("DMCU-MEM-001"), std::string::npos);
  }
}

TEST(AnalysisStrict, QuotaOversubscriptionRefusedWithCode) {
  ModelRegistry reg;
  (void)reg.add(tiny_session(), "a", 0, /*kv_quota=*/3);
  (void)reg.add(tiny_session(), "b", 0, /*kv_quota=*/2);
  BatchedEngine::MultiOptions opts;
  opts.total_kv_slots = 4;
  EXPECT_THROW(BatchedEngine(reg, opts), Error);

  opts.strict = true;
  try {
    BatchedEngine engine(reg, opts);
    FAIL() << "strict construction accepted an oversubscribed budget";
  } catch (const AnalysisError& e) {
    EXPECT_TRUE(e.report().has(analysis::kKvBudget)) << e.what();
  }
}

TEST(AnalysisStrict, TraceCollisionRefusedOnlyUnderStrict) {
  // Plain construction accepts the colliding names (the registry only
  // rejects exact duplicates); strict mode refuses them.
  ModelRegistry reg;
  (void)reg.add(tiny_session(), "tiny-llama", 0, 1, 1);
  (void)reg.add(tiny_session(), "tiny_llama", 0, 1, 1);
  BatchedEngine::MultiOptions opts;
  opts.total_kv_slots = 2;
  EXPECT_NO_THROW(BatchedEngine(reg, opts));

  opts.strict = true;
  try {
    BatchedEngine engine(reg, opts);
    FAIL() << "strict construction accepted a trace-lane collision";
  } catch (const AnalysisError& e) {
    EXPECT_TRUE(e.report().has(analysis::kTraceCollision)) << e.what();
  }
}

TEST(AnalysisStrict, CleanConfigConstructsAndServes) {
  BatchedEngine::Options opts;
  opts.max_batch = 2;
  opts.strict = true;
  BatchedEngine engine(tiny_session(), opts);
  ASSERT_TRUE(engine.submit({1, 2, 3}, 4).has_value());
  const auto results = engine.run_to_completion();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].gen.generated, 4);
}

TEST(AnalysisStrict, SubmitTimeThrowCaughtStatically) {
  // submit() throws on these shapes only at serving time; the analyzer
  // flags the same workload before any engine exists.
  ModelRegistry reg;
  (void)reg.add(tiny_session(), "tiny", 0, 2, 2);
  BatchedEngine engine(reg, {.total_kv_slots = 2});
  EXPECT_THROW((void)engine.submit(0, {1, 2, 3, 4, 5, 6, 7, 8}, 1), Error);

  Workload wl;
  wl.requests.push_back({.model = 0, .prompt_tokens = 8, .new_tokens = 1});
  const auto rep = analyze(reg, {.total_kv_slots = 2}, &wl);
  EXPECT_TRUE(rep.has(analysis::kRequestShape)) << rep.to_text();
  EXPECT_FALSE(rep.ok());
}

TEST(AnalysisStrict, PagedCleanConfigConstructsAndServes) {
  // The paged fit checks must mirror the engine's page-granular
  // derivations: a sound paged deployment (cap counts pages, not whole
  // sets) must pass strict construction — the slot-shaped formula would
  // false-positive here because a 6-page cap is only one context's KV.
  ModelRegistry reg;
  (void)reg.add(tiny_session(), "tiny", /*prefill_chunk_tokens=*/2,
                /*kv_quota=*/6, /*max_resident=*/6);
  BatchedEngine::MultiOptions opts;
  opts.total_kv_slots = 6;  // six 4-token pages == one 24-token context
  opts.strict = true;
  opts.kv_page_tokens = 4;
  opts.prefix_sharing = true;
  BatchedEngine engine(reg, opts);
  ASSERT_TRUE(engine.submit(0, {1, 2, 3}, 4).has_value());
  const auto results = engine.run_to_completion();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].gen.generated, 4);
}

TEST(AnalysisStrict, NegativePageTokensRefusedWithCode) {
  ModelRegistry reg;
  (void)reg.add(tiny_session(), "tiny", 0, /*kv_quota=*/2,
                /*max_resident=*/2);
  BatchedEngine::MultiOptions opts;
  opts.total_kv_slots = 2;
  opts.kv_page_tokens = -4;
  EXPECT_THROW(BatchedEngine(reg, opts), Error);

  opts.strict = true;
  try {
    BatchedEngine engine(reg, opts);
    FAIL() << "strict construction accepted a negative page size";
  } catch (const AnalysisError& e) {
    EXPECT_TRUE(e.report().has(analysis::kPagedConfig)) << e.what();
    EXPECT_NE(std::string(e.what()).find("DMCU-PAGE-007"),
              std::string::npos);
  }
}

TEST(AnalysisStrict, PagedSubmitLivelockCaughtStatically) {
  // submit() refuses a sequence whose full KV exceeds the tenant's page
  // cap only at serving time; the analyzer flags the same workload
  // before any engine exists.
  ModelRegistry reg;
  (void)reg.add(tiny_session(), "tiny", 0, /*kv_quota=*/4,
                /*max_resident=*/4);
  BatchedEngine::MultiOptions opts;
  opts.total_kv_slots = 4;
  opts.kv_page_tokens = 4;
  BatchedEngine engine(reg, opts);
  EXPECT_THROW((void)engine.submit(0, {1, 2, 3, 4, 5, 6}, 18), Error);

  Workload wl;
  wl.requests.push_back({.model = 0, .prompt_tokens = 6, .new_tokens = 18});
  const auto rep = analyze(reg, opts, &wl);
  EXPECT_TRUE(rep.has(analysis::kPagedConfig)) << rep.to_text();
  EXPECT_FALSE(rep.ok());
}

// ---------------------------------------------------------------------
// Randomized analyzer/engine equivalence cross-check.
// ---------------------------------------------------------------------

struct PoolEntry {
  const InferenceSession* session;
  int prompt_len;
  int ar_context;
};

const std::vector<PoolEntry>& session_pool() {
  static const auto* pool = [] {
    auto* v = new std::vector<PoolEntry>();
    static const InferenceSession tiny12(tiny_cfg(12, 4), 2);
    static const InferenceSession tiny48(tiny_cfg(48, 8), 4);
    v->push_back({&tiny_session(), 6, 24});
    v->push_back({&tiny12, 4, 12});
    v->push_back({&tiny48, 8, 48});
    return v;
  }();
  return *pool;
}

TEST(ServingInvariantsAnalysis, CleanConfigsServeBadConfigsThrow) {
  const std::uint64_t seeds = invariant_seed_count(/*fallback=*/30);
  SeedReproLog repro("./test_analysis",
                     "ServingInvariantsAnalysis.CleanConfigsServeBadConfigsThrow");
  int clean_seen = 0;
  int error_seen = 0;
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    repro.begin();
    util::Rng rng(0x9e3779b97f4a7c15ULL ^ seed);
    const int n_tenants = 1 + static_cast<int>(rng.next_below(3));
    ModelRegistry reg;
    std::vector<PoolEntry> picked;
    for (int t = 0; t < n_tenants; ++t) {
      const auto& entry =
          session_pool()[rng.next_below(session_pool().size())];
      picked.push_back(entry);
      (void)reg.add(*entry.session, "t" + std::to_string(t),
                    /*prefill_chunk_tokens=*/
                    static_cast<int>(rng.next_below(5)),
                    /*kv_quota=*/static_cast<int>(rng.next_below(5)),
                    /*max_resident=*/static_cast<int>(rng.next_below(5)));
    }
    BatchedEngine::MultiOptions opts;
    // Mostly small arenas; occasionally huge, so the pooled-KV L2
    // overflow branch (DMCU-MEM-001) is exercised too.
    opts.total_kv_slots = rng.next_below(8) == 0
                              ? 4096
                              : 1 + static_cast<int>(rng.next_below(8));
    opts.max_pending = 32;
    switch (rng.next_below(3)) {
      case 0:
        break;  // static split (default)
      case 1:
        opts.kv_budget =
            runtime::make_kv_budget(runtime::KvBudget::proportional);
        break;
      default:
        opts.kv_budget =
            runtime::make_kv_budget(runtime::KvBudget::watermark);
        break;
    }

    const AnalysisReport rep = DeploymentAnalyzer::analyze(reg, opts);
    const bool unsound = rep.has(analysis::kCfgMalformed) ||
                         rep.has(analysis::kKvBudget) ||
                         rep.has(analysis::kMemOverflow);
    const bool unsound_error =
        unsound && rep.errors() > 0;  // KV-002 warnings alone are sound

    if (!unsound_error) {
      ++clean_seen;
      // Analyzer-clean must construct and drain with conservation.
      BatchedEngine engine(reg, opts);
      int accepted = 0;
      const int jobs = 3 + static_cast<int>(rng.next_below(4));
      for (int j = 0; j < jobs; ++j) {
        const auto model = static_cast<runtime::ModelId>(
            rng.next_below(static_cast<std::uint64_t>(n_tenants)));
        const auto& entry = picked[static_cast<std::size_t>(model)];
        const int prompt_len = 1 + static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(entry.prompt_len)));
        std::vector<int> prompt;
        for (int p = 0; p < prompt_len; ++p) {
          prompt.push_back(static_cast<int>(rng.next_below(100)));
        }
        const int max_new = entry.ar_context - prompt_len;
        const int new_tokens = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(max_new) + 1));
        if (engine.submit(model, std::move(prompt), new_tokens)) ++accepted;
      }
      const auto results = engine.run_to_completion();
      EXPECT_EQ(static_cast<int>(results.size()), accepted)
          << "seed " << seed << ": accepted requests did not all complete";
      EXPECT_EQ(engine.stats().completed, accepted) << "seed " << seed;
      EXPECT_EQ(engine.kv_slots().in_use(), 0)
          << "seed " << seed << ": KV slots leaked";
      int generated = 0;
      for (const auto& r : results) generated += r.gen.generated;
      EXPECT_EQ(engine.stats().total_generated, generated)
          << "seed " << seed;
    } else {
      ++error_seen;
      // Analyzer-unsound (CFG/KV/MEM error) must fail construction.
      EXPECT_THROW(BatchedEngine(reg, opts), Error)
          << "seed " << seed
          << ": engine accepted a config the analyzer rejects:\n"
          << rep.to_text();
    }
    repro.end(seed);
  }
  // The generator must exercise both branches, or the property is vacuous.
  EXPECT_GT(clean_seen, 0);
  EXPECT_GT(error_seen, 0);
}

}  // namespace
