// Unit tests for the paged KV budget substrate: PagedKvArena refcount
// and ownership discipline (acquire / add_ref / release / reclaim,
// per-tenant occupancy counted per physical page), and the bounded
// QuantileReservoir that replaced the engine's unbounded sorted
// queue-delay vector.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "mem/arena.hpp"
#include "mem/paged_arena.hpp"
#include "util/check.hpp"
#include "util/quantile_reservoir.hpp"

using namespace distmcu;
using mem::Arena;
using mem::PagedKvArena;
using util::QuantileReservoir;

TEST(PagedKvArena, ReservesPoolUpFrontAndAcquiresLowestFree) {
  Arena a("L2", 1_MiB);
  PagedKvArena pages(a, "kv_page", 8, 1024);
  EXPECT_EQ(a.used(), 8u * 1024u);  // whole pool charged at construction
  EXPECT_EQ(pages.capacity(), 8);
  EXPECT_EQ(pages.free(), 8);
  EXPECT_EQ(pages.pool_bytes(), 8u * 1024u);

  const auto p0 = pages.acquire();
  const auto p1 = pages.acquire();
  ASSERT_TRUE(p0 && p1);
  EXPECT_EQ(*p0, 0);
  EXPECT_EQ(*p1, 1);
  pages.release(*p0, 0);
  const auto again = pages.acquire();
  ASSERT_TRUE(again);
  EXPECT_EQ(*again, 0);  // lowest-free-index, deterministic
}

TEST(PagedKvArena, ExhaustionReturnsNulloptWithoutSideEffects) {
  Arena a("L2", 1_MiB);
  PagedKvArena pages(a, "kv_page", 2, 256);
  ASSERT_TRUE(pages.acquire());
  ASSERT_TRUE(pages.acquire());
  EXPECT_EQ(pages.free(), 0);
  EXPECT_FALSE(pages.acquire());
  EXPECT_EQ(pages.in_use(), 2);
  EXPECT_EQ(pages.total_refs(), 2);
}

TEST(PagedKvArena, PoolLargerThanArenaThrows) {
  Arena a("L2", 1024);
  EXPECT_THROW(PagedKvArena(a, "kv_page", 8, 1024), PlanError);
}

TEST(PagedKvArena, RefcountSharingFreesOnlyAtLastRelease) {
  Arena a("L2", 1_MiB);
  PagedKvArena pages(a, "kv_page", 4, 512);
  const int p = *pages.acquire(1);
  pages.add_ref(p);
  pages.add_ref(p);
  EXPECT_EQ(pages.refcount(p), 3);
  EXPECT_EQ(pages.total_refs(), 3);
  EXPECT_EQ(pages.shared_pages(), 1);
  // A shared page is physically counted once toward its owner.
  EXPECT_EQ(pages.tenant_in_use(1), 1);
  EXPECT_EQ(pages.in_use(), 1);

  pages.release(p, 1);
  pages.release(p, 1);
  EXPECT_EQ(pages.refcount(p), 1);
  EXPECT_EQ(pages.owner(p), 1);
  EXPECT_EQ(pages.in_use(), 1);  // still held
  pages.release(p, 1);
  EXPECT_EQ(pages.refcount(p), 0);
  EXPECT_EQ(pages.owner(p), PagedKvArena::kFreePage);
  EXPECT_EQ(pages.in_use(), 0);
  EXPECT_EQ(pages.total_refs(), 0);
}

TEST(PagedKvArena, OwnerCheckedReleaseRejectsForeignTenant) {
  Arena a("L2", 1_MiB);
  PagedKvArena pages(a, "kv_page", 4, 512);
  const int p = *pages.acquire(0);
  EXPECT_THROW(pages.release(p, 1), Error);  // wrong tenant
  EXPECT_THROW(pages.release(p + 1, 0), Error);  // free page
  EXPECT_THROW(pages.add_ref(p + 1), Error);     // ref on free page
  pages.release(p, 0);
  EXPECT_THROW(pages.release(p, 0), Error);  // double free
}

TEST(PagedKvArena, ReclaimCountsOnlyWhenLastReferenceDrops) {
  Arena a("L2", 1_MiB);
  PagedKvArena pages(a, "kv_page", 4, 512);
  const int p = *pages.acquire(2);
  pages.add_ref(p);
  pages.reclaim(p, 2);  // a reference remains: not a reclaim yet
  EXPECT_EQ(pages.tenant_reclaimed(2), 0);
  EXPECT_EQ(pages.total_reclaimed(), 0);
  pages.reclaim(p, 2);  // last reference: the page is reclaimed
  EXPECT_EQ(pages.tenant_reclaimed(2), 1);
  EXPECT_EQ(pages.total_reclaimed(), 1);
  EXPECT_EQ(pages.owner(p), PagedKvArena::kFreePage);
}

TEST(PagedKvArena, PerTenantHighWaterTracksPhysicalPages) {
  Arena a("L2", 1_MiB);
  PagedKvArena pages(a, "kv_page", 8, 256);
  const int a0 = *pages.acquire(0);
  const int a1 = *pages.acquire(0);
  const int b0 = *pages.acquire(1);
  EXPECT_EQ(pages.tenant_in_use(0), 2);
  EXPECT_EQ(pages.tenant_in_use(1), 1);
  pages.release(a0, 0);
  pages.release(a1, 0);
  EXPECT_EQ(pages.tenant_in_use(0), 0);
  EXPECT_EQ(pages.tenant_high_water(0), 2);
  EXPECT_EQ(pages.tenant_high_water(1), 1);
  pages.release(b0, 1);
  EXPECT_EQ(pages.in_use(), 0);
}

TEST(PagedKvArena, RandomizedRefcountConservation) {
  // Random acquire / add_ref / release traffic against a shadow model:
  // total_refs and per-tenant physical occupancy must track exactly, and
  // everything must drain to zero.
  Arena a("L2", 4_MiB);
  PagedKvArena pages(a, "kv_page", 16, 128);
  std::mt19937 rng(0xC0FFEE);
  // refs[t] holds (page) entries tenant t must eventually return.
  std::vector<std::vector<int>> refs(3);
  for (int it = 0; it < 2000; ++it) {
    const int tenant = static_cast<int>(rng() % 3);
    const int action = static_cast<int>(rng() % 3);
    if (action == 0) {
      if (const auto p = pages.acquire(tenant)) refs[tenant].push_back(*p);
    } else if (action == 1) {
      // add_ref a random held page; the new reference is returned
      // through the page's owner tenant.
      std::vector<int> held;
      for (const auto& v : refs) held.insert(held.end(), v.begin(), v.end());
      if (!held.empty()) {
        const int p = held[rng() % held.size()];
        pages.add_ref(p);
        refs[static_cast<std::size_t>(pages.owner(p))].push_back(p);
      }
    } else if (!refs[static_cast<std::size_t>(tenant)].empty()) {
      auto& v = refs[static_cast<std::size_t>(tenant)];
      const std::size_t i = rng() % v.size();
      pages.release(v[i], pages.owner(v[i]));
      v.erase(v.begin() + static_cast<std::ptrdiff_t>(i));
    }
    long long expect_refs = 0;
    for (const auto& v : refs) expect_refs += static_cast<long long>(v.size());
    ASSERT_EQ(pages.total_refs(), expect_refs) << "iteration " << it;
    // Physical occupancy: distinct pages across all tenants' tables.
    std::vector<int> all;
    for (const auto& v : refs) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    ASSERT_EQ(pages.in_use(), static_cast<int>(all.size())) << "iteration " << it;
  }
  for (std::size_t t = 0; t < refs.size(); ++t) {
    for (const int p : refs[t]) pages.release(p, pages.owner(p));
  }
  EXPECT_EQ(pages.in_use(), 0);
  EXPECT_EQ(pages.total_refs(), 0);
}

TEST(QuantileReservoir, ExactPercentilesBelowCapacity) {
  QuantileReservoir r(64);
  // Insert 1..50 shuffled; nearest-rank percentiles are exact.
  std::vector<Cycles> vals(50);
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = i + 1;
  std::mt19937 rng(7);
  std::shuffle(vals.begin(), vals.end(), rng);
  for (const Cycles v : vals) r.insert(v);
  EXPECT_EQ(r.size(), 50u);
  EXPECT_EQ(r.percentile(50.0), 25u);
  EXPECT_EQ(r.percentile(95.0), 48u);
  EXPECT_EQ(r.percentile(99.0), 50u);
  EXPECT_EQ(r.percentile(0.0), 1u);
  EXPECT_EQ(r.percentile(100.0), 50u);
}

TEST(QuantileReservoir, EmptyReturnsZero) {
  const QuantileReservoir r;
  EXPECT_EQ(r.percentile(50.0), 0u);
  EXPECT_EQ(r.size(), 0u);
}

TEST(QuantileReservoir, BoundedMemoryBeyondCapacity) {
  QuantileReservoir r(32);
  for (Cycles v = 0; v < 10000; ++v) r.insert(v);
  EXPECT_EQ(r.size(), 32u);  // memory stays bounded
  EXPECT_EQ(r.inserted(), 10000u);
  // The uniform sample keeps percentiles statistically stable: over
  // 10000 uniform inserts p50 of the retained sample stays within the
  // middle half of the range with overwhelming probability for the
  // fixed deterministic seed.
  const Cycles p50 = r.percentile(50.0);
  EXPECT_GT(p50, 2500u);
  EXPECT_LT(p50, 7500u);
}

TEST(QuantileReservoir, DeterministicAcrossInstances) {
  QuantileReservoir a(16);
  QuantileReservoir b(16);
  for (Cycles v = 0; v < 5000; ++v) {
    a.insert(v * 3 + 1);
    b.insert(v * 3 + 1);
  }
  for (const double p : {10.0, 50.0, 95.0, 99.0}) {
    EXPECT_EQ(a.percentile(p), b.percentile(p)) << "p" << p;
  }
}
