#include "runtime/scheduler.hpp"

#include "util/check.hpp"

namespace distmcu::runtime {

namespace {

/// Saturating queue wait for aging (submit stamps never exceed `now`,
/// but the guard keeps a misbehaving caller from wrapping the unsigned
/// subtraction into an instant max-promotion).
Cycles waited(const Scheduler::Candidate& c, Cycles now) {
  return now >= c.submitted_at ? now - c.submitted_at : 0;
}

}  // namespace

std::size_t FifoScheduler::pick(const std::vector<Candidate>& queue,
                                Cycles /*now*/) const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue.size(); ++i) {
    if (queue[i].submit_seq < queue[best].submit_seq) best = i;
  }
  return best;
}

std::size_t PriorityScheduler::pick(const std::vector<Candidate>& queue,
                                    Cycles now) const {
  // Effective class = static class minus one per aging_cycles waited;
  // signed so promotion continues below class 0 and an arbitrarily old
  // request eventually outranks every fresh arrival of a bounded-class
  // workload. Ties (same effective class) are FIFO.
  const auto effective = [&](const Candidate& c) -> long long {
    long long cls = c.priority;
    if (opts_.aging_cycles > 0) {
      cls -= static_cast<long long>(waited(c, now) / opts_.aging_cycles);
    }
    return cls;
  };
  std::size_t best = 0;
  long long best_cls = effective(queue[0]);
  for (std::size_t i = 1; i < queue.size(); ++i) {
    const long long cls = effective(queue[i]);
    if (cls < best_cls ||
        (cls == best_cls && queue[i].submit_seq < queue[best].submit_seq)) {
      best = i;
      best_cls = cls;
    }
  }
  return best;
}

std::size_t EdfScheduler::pick(const std::vector<Candidate>& queue,
                               Cycles now) const {
  // Band 0: feasible deadlines (now + estimated_cost <= deadline_at),
  // earliest first. Band 1: infeasible deadlines — already lost, so they
  // must not displace a request that can still be saved. Band 2:
  // best-effort (no deadline), FIFO.
  const auto band = [&](const Candidate& c) -> int {
    if (c.deadline_at == kNoDeadline) return 2;
    // Saturating: a huge estimate late in a run must read as infeasible,
    // not wrap past the deadline.
    return util::sat_add(now, c.estimated_cost) <= c.deadline_at ? 0 : 1;
  };
  const auto better = [&](const Candidate& a, const Candidate& b) {
    const int ba = band(a);
    const int bb = band(b);
    if (ba != bb) return ba < bb;
    if (ba != 2 && a.deadline_at != b.deadline_at) {
      return a.deadline_at < b.deadline_at;
    }
    return a.submit_seq < b.submit_seq;
  };
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue.size(); ++i) {
    if (better(queue[i], queue[best])) best = i;
  }
  return best;
}

int DeadlineAwarePreemption::pick_victim(const std::vector<Victim>& victims,
                                         const Scheduler::Candidate& starved,
                                         Cycles now) const {
  const auto feasible = [&](const Victim& v) {
    return v.deadline_at != kNoDeadline &&
           util::sat_add(now, v.remaining_cost) <= v.deadline_at;
  };
  // Bands: 0 watermark-borrowed slot, 1 best-effort, 2 deadline already
  // lost, 3 feasible-but-later deadline (most slack sacrificed last).
  const auto band = [&](const Victim& v) -> int {
    if (v.borrowed) return 0;
    if (v.deadline_at == kNoDeadline) return 1;
    return feasible(v) ? 3 : 2;
  };
  const auto protected_victim = [&](const Victim& v) {
    if (opts_.max_evictions >= 0 && v.times_evicted >= opts_.max_evictions) {
      return true;
    }
    return feasible(v) && v.deadline_at <= starved.deadline_at;
  };
  const auto better = [&](const Victim& a, const Victim& b) {
    const int ba = band(a);
    const int bb = band(b);
    if (ba != bb) return ba < bb;
    if (ba == 3 && a.deadline_at != b.deadline_at) {
      return a.deadline_at > b.deadline_at;  // latest deadline first
    }
    if (a.generated != b.generated) return a.generated < b.generated;
    return a.id < b.id;
  };
  int best = -1;
  for (std::size_t i = 0; i < victims.size(); ++i) {
    if (protected_victim(victims[i])) continue;
    if (best < 0 || better(victims[i], victims[static_cast<std::size_t>(best)])) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

const char* policy_name(SchedulePolicy policy) {
  switch (policy) {
    case SchedulePolicy::fifo: return "fifo";
    case SchedulePolicy::priority: return "priority";
    case SchedulePolicy::edf: return "edf";
  }
  return "?";
}

std::shared_ptr<const Scheduler> make_scheduler(SchedulePolicy policy) {
  switch (policy) {
    case SchedulePolicy::fifo: return std::make_shared<FifoScheduler>();
    case SchedulePolicy::priority: return std::make_shared<PriorityScheduler>();
    case SchedulePolicy::edf: return std::make_shared<EdfScheduler>();
  }
  throw Error("make_scheduler: unknown policy");
}

}  // namespace distmcu::runtime
