#ifndef DISTMCU_RUNTIME_PREFETCH_PIPELINE_HPP
#define DISTMCU_RUNTIME_PREFETCH_PIPELINE_HPP

#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace distmcu::runtime {

/// The double-buffering race the paper's steady-state analysis hinges on,
/// factored out of SteadyStateSimulation so the serving engine shares the
/// exact same timeline semantics: a chain of compute spans on one
/// sim::Engine timeline, where the weight shard consumed by span i+1 is an
/// asynchronous DMA on a single sim::Resource L3 port racing span i's
/// compute. A span stalls only for the part of the stream its predecessor's
/// compute could not cover, so the chain's cost is
/// max(compute, prefetch_ready) per span instead of compute + stream.
///
/// The first consuming span's weights are staged before the window opens
/// (the paper's setup for block 0), so a pipeline reports nonzero stall
/// cycles only when compute cannot cover the stream.
class PrefetchPipeline {
 public:
  /// One advanced compute span on the pipeline timeline.
  struct Span {
    Cycles begin = 0;  ///< timeline when the span was requested
    Cycles start = 0;  ///< compute start: begin + stall
    Cycles end = 0;    ///< start + compute
    Cycles stall = 0;  ///< cycles spent waiting for the staged weights
    /// The next span's prefetch DMA, issued as this span starts
    /// (fetch_ready == fetch_issue when nothing was issued).
    Cycles fetch_issue = 0;
    Cycles fetch_ready = 0;
  };

  /// `bandwidth_bytes_per_cycle` / `dma_setup` configure the L3 port every
  /// prefetch serializes on (FIFO, shared busy horizon).
  PrefetchPipeline(double bandwidth_bytes_per_cycle, Cycles dma_setup);

  /// Advance by one compute span of `compute` cycles that consumes the
  /// currently staged weights (stalling until they are ready), and issue
  /// the DMA of `next_bytes` for the following span at this span's start.
  /// `next_bytes == 0` issues nothing: whatever is staged stays staged,
  /// so the next consuming span starts stall-free.
  Span advance(Cycles compute, Bytes next_bytes);

  /// Advance the timeline by a span that does not touch the staged
  /// weights (e.g. a prefill charged in full): any in-flight prefetch
  /// keeps draining underneath it. `port_cycles` declares how long the
  /// opaque span itself occupies the shared port (its own streaming,
  /// already inside `compute`); an in-flight fetch is pushed back by
  /// that occupancy since the port serializes. Must satisfy
  /// port_cycles <= compute so a later consuming span never stalls
  /// longer than one full stream.
  void advance_opaque(Cycles compute, Cycles port_cycles = 0);

  [[nodiscard]] Cycles now() const { return engine_.now(); }
  [[nodiscard]] Cycles stall_total() const { return stall_total_; }
  [[nodiscard]] const sim::Resource& port() const { return port_; }
  [[nodiscard]] const sim::Engine& engine() const { return engine_; }

 private:
  sim::Engine engine_;
  sim::Resource port_;
  Cycles weights_ready_ = 0;  // readiness of the next consuming span's weights
  Cycles stall_total_ = 0;
};

}  // namespace distmcu::runtime

#endif  // DISTMCU_RUNTIME_PREFETCH_PIPELINE_HPP
