#include "util/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace distmcu::util {

std::string format_bytes(Bytes bytes) {
  constexpr std::array<const char*, 5> suffixes{"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t idx = 0;
  while (value >= 1024.0 && idx + 1 < suffixes.size()) {
    value /= 1024.0;
    ++idx;
  }
  char buf[64];
  if (idx == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, suffixes[idx]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, suffixes[idx]);
  }
  return buf;
}

std::string format_si(double value, int precision) {
  constexpr std::array<const char*, 5> suffixes{"", "K", "M", "G", "T"};
  double magnitude = std::fabs(value);
  std::size_t idx = 0;
  while (magnitude >= 1000.0 && idx + 1 < suffixes.size()) {
    magnitude /= 1000.0;
    value /= 1000.0;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%s", precision, value, suffixes[idx]);
  return buf;
}

}  // namespace distmcu::util
