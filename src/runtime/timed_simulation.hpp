#ifndef DISTMCU_RUNTIME_TIMED_SIMULATION_HPP
#define DISTMCU_RUNTIME_TIMED_SIMULATION_HPP

#include <vector>

#include "chip/chip_config.hpp"
#include "mem/traffic.hpp"
#include "model/config.hpp"
#include "noc/topology.hpp"
#include "partition/memory_planner.hpp"
#include "partition/plan.hpp"
#include "runtime/block_program.hpp"
#include "sim/tracer.hpp"
#include "util/units.hpp"

namespace distmcu::runtime {

/// How block latency is reported (DESIGN.md "Calibration decisions"):
///  * single_block_resident — the paper's methodology: one block's
///    latency with its weights staged in L2; the next-block prefetch is
///    charged to energy and traffic but not to latency;
///  * steady_state — the latency of a block in a long-running inference,
///    where a double-buffered block cannot finish before its successor's
///    prefetch completes (exposed by the A2 ablation bench).
enum class LatencyAccounting { single_block_resident, steady_state };

/// Full multi-chip system description.
struct SystemConfig {
  chip::ChipConfig chip = chip::ChipConfig::siracusa();
  noc::LinkConfig link;
  int group_size = 4;  // hierarchical reduce fan-in (paper Fig. 1)
  partition::PrecisionConfig precision;
  LatencyAccounting accounting = LatencyAccounting::single_block_resident;
  bool flat_topology = false;  // ablation: all-to-one reduce

  /// The paper's platform: a network of Siracusa chips with MIPI links.
  [[nodiscard]] static SystemConfig siracusa_system();
};

/// Runtime attribution in the categories of the paper's Fig. 4 stacked
/// bars. Sums exactly to the block latency.
struct Breakdown {
  Cycles compute = 0;
  Cycles dma_l3_l2 = 0;
  Cycles dma_l2_l1 = 0;
  Cycles c2c = 0;

  [[nodiscard]] Cycles total() const { return compute + dma_l3_l2 + dma_l2_l1 + c2c; }
};

/// Everything one simulated block execution produces; the energy model
/// consumes traffic + per-chip compute time, the benches consume the
/// rest.
struct RunReport {
  int num_chips = 1;
  model::Mode mode = model::Mode::autoregressive;
  partition::Residency residency = partition::Residency::streamed;

  Cycles block_cycles = 0;
  Breakdown breakdown;

  /// Bytes moved, summed over all chips (l3_l2 includes prefetch).
  mem::TrafficCounter traffic;
  /// Next-block prefetch portion of traffic.l3_l2.
  Bytes prefetch_bytes = 0;

  /// Active cluster cycles per chip — the T_comp,j of the paper's
  /// energy equation.
  std::vector<Cycles> t_comp;

  [[nodiscard]] Cycles t_comp_total() const;
  [[nodiscard]] double ms(double freq_hz) const {
    return util::cycles_to_ms(block_cycles, freq_hz);
  }
};

/// Replays a BlockProgram against the platform model: kernel-cycle costs
/// from chip::KernelTiming, synchronous L3 tile fetches in the streamed
/// regime, L2->L1 tile DMA overlapped with compute, and the hierarchical
/// collectives with port contention. Optionally records spans into a
/// tracer for timeline inspection.
class TimedBlockSimulation {
 public:
  explicit TimedBlockSimulation(SystemConfig sys);

  /// `attention_span_override` (see build_block_program) costs a prompt
  /// chunk that attends to a cached prefix longer than its own rows; 0
  /// keeps the mode-derived span.
  [[nodiscard]] RunReport run(const partition::PartitionPlan& plan, model::Mode mode,
                              sim::Tracer* tracer = nullptr,
                              int attention_span_override = 0) const;

  [[nodiscard]] const SystemConfig& system() const { return sys_; }

 private:
  SystemConfig sys_;
};

}  // namespace distmcu::runtime

#endif  // DISTMCU_RUNTIME_TIMED_SIMULATION_HPP
