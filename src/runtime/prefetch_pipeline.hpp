#ifndef DISTMCU_RUNTIME_PREFETCH_PIPELINE_HPP
#define DISTMCU_RUNTIME_PREFETCH_PIPELINE_HPP

#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace distmcu::runtime {

/// The double-buffering race the paper's steady-state analysis hinges on,
/// factored out of SteadyStateSimulation so the serving engine shares the
/// exact same timeline semantics: a chain of compute spans on one
/// sim::Engine timeline, where the weight shard consumed by span i+1 is an
/// asynchronous DMA on a single sim::Resource L3 port racing span i's
/// compute. A span stalls only for the part of the stream its predecessor's
/// compute could not cover, so the chain's cost is
/// max(compute, prefetch_ready) per span instead of compute + stream.
///
/// The port is multi-consumer: besides the staged decode-weight fetches,
/// a step can issue its own prompt-chunk streams (chunked prefill) that
/// race the step's compute on the same FIFO horizon — an in-flight
/// decode fetch, the chunk streams behind it, and the next decode fetch
/// behind those all serialize in issue order, so contention between the
/// prompt and decode phases of a heterogeneous batch emerges from the
/// port rather than from scheduling logic in the engine.
///
/// The first consuming span's weights are staged before the window opens
/// (the paper's setup for block 0), so a pipeline reports nonzero stall
/// cycles only when compute cannot cover the stream.
class PrefetchPipeline {
 public:
  /// One advanced compute span on the pipeline timeline.
  struct Span {
    Cycles begin = 0;  ///< timeline when the span was requested
    Cycles start = 0;  ///< compute start: begin + stall
    Cycles end = 0;    ///< start + compute
    Cycles stall = 0;  ///< cycles spent waiting for the staged weights
    /// The next span's prefetch DMA, issued as this span starts
    /// (fetch_ready == fetch_issue when nothing was issued).
    Cycles fetch_issue = 0;
    Cycles fetch_ready = 0;
  };

  /// One heterogeneous serving step: an optional prompt-chunk phase
  /// (compute plus its own asynchronous chunk streams), then an optional
  /// decode phase gated on the staged weights, then the next decode
  /// fetch. The step ends when both the serialized compute and the chunk
  /// streams have landed.
  struct StepSpan {
    Cycles begin = 0;         ///< step start == prompt-chunk phase start
    Cycles decode_begin = 0;  ///< begin + prefill_compute
    Cycles decode_start = 0;  ///< decode_begin + stall
    Cycles stall = 0;         ///< wait for the staged decode weights
    Cycles end = 0;           ///< max(decode work end, chunk streams landed)

    /// This step's chunk streams on the port: the service window
    /// [chunk_stream_start, chunk_ready] excludes FIFO queueing behind an
    /// in-flight decode fetch; `prefill_window` = chunk_ready - begin
    /// includes it (what the step actually waited on). Zero-width when no
    /// chunk bytes were issued.
    Cycles chunk_stream_start = 0;
    Cycles chunk_ready = 0;
    Cycles prefill_window = 0;
    /// Part of the chunk-stream window past the step's compute — the
    /// visible (unhidden) prompt-stream cycles.
    Cycles prefill_tail = 0;

    /// The next decode-weight fetch: issued at decode_start, served by
    /// the port from fetch_start (>= issue when queued behind chunk
    /// streams). fetch_ready == fetch_issue when nothing was issued.
    Cycles fetch_issue = 0;
    Cycles fetch_start = 0;
    Cycles fetch_ready = 0;
  };

  /// `bandwidth_bytes_per_cycle` / `dma_setup` configure the L3 port every
  /// prefetch serializes on (FIFO, shared busy horizon). `channels` is
  /// the number of independent staged-weights slots sharing the port —
  /// one per deployed model in multi-model serving, where each model's
  /// decode weights are prefetched into its own staging buffer but every
  /// DMA still serializes on the single off-chip link. The default (1)
  /// is the historical single-deployment pipeline.
  explicit PrefetchPipeline(double bandwidth_bytes_per_cycle, Cycles dma_setup,
                            int channels = 1);

  /// Advance by one compute span of `compute` cycles that consumes the
  /// currently staged weights of `channel` (stalling until they are
  /// ready), and issue the DMA of `next_bytes` for the following span at
  /// this span's start. `next_bytes == 0` issues nothing: whatever is
  /// staged stays staged, so the next consuming span starts stall-free.
  /// Equivalent to advance_step with an empty prompt phase.
  Span advance(Cycles compute, Bytes next_bytes, int channel = 0);

  /// Advance by one heterogeneous step:
  ///  1. `prefill_compute` cycles of prompt-chunk work run from the step
  ///     start while the chunks' own `prefill_stream_bytes` stream on the
  ///     port (issued at step start, FIFO behind any in-flight fetch);
  ///  2. when `consume_staged`, a decode phase of `decode_compute` cycles
  ///     follows, gated on `channel`'s staged weights (the stall window
  ///     sits after the prompt work, which therefore helps cover it);
  ///  3. `next_bytes` of the following decode fetch are issued at the
  ///     decode phase start, behind the chunk streams.
  /// The step ends at max(compute end, chunk streams landed); the
  /// overshoot is reported as `prefill_tail`.
  StepSpan advance_step(Cycles prefill_compute, Bytes prefill_stream_bytes,
                        bool consume_staged, Cycles decode_compute,
                        Bytes next_bytes, int channel = 0);

  /// Advance the timeline by a span that does not touch the staged
  /// weights (the serial-prefill compatibility mode, where a prompt is
  /// charged in one piece at admission): any in-flight prefetch keeps
  /// draining underneath it. `port_cycles` declares how long the opaque
  /// span itself occupies the shared port (its own streaming, already
  /// inside `compute`); an in-flight fetch is pushed back by that
  /// occupancy since the port serializes. Must satisfy
  /// port_cycles <= compute so the span never grows an in-flight
  /// fetch's stall margin beyond what its issue recorded.
  void advance_opaque(Cycles compute, Cycles port_cycles = 0);

  [[nodiscard]] Cycles now() const { return engine_.now(); }
  [[nodiscard]] Cycles stall_total() const { return stall_total_; }
  [[nodiscard]] const sim::Resource& port() const { return port_; }
  [[nodiscard]] const sim::Engine& engine() const { return engine_; }

 private:
  sim::Engine engine_;
  sim::Resource port_;
  /// Readiness of the next consuming span's weights, one staging slot
  /// per channel (all DMAs share the port's FIFO horizon).
  std::vector<Cycles> weights_ready_;
  Cycles stall_total_ = 0;
};

}  // namespace distmcu::runtime

#endif  // DISTMCU_RUNTIME_PREFETCH_PIPELINE_HPP
