#include "sim/resource.hpp"

#include <cmath>

#include "util/check.hpp"

namespace distmcu::sim {

Resource::Resource(std::string name, double bandwidth_bytes_per_cycle, Cycles setup_cycles)
    : name_(std::move(name)), bandwidth_(bandwidth_bytes_per_cycle), setup_cycles_(setup_cycles) {
  DISTMCU_CHECK(bandwidth_ > 0.0, "Resource bandwidth must be positive: " + name_);
}

Cycles Resource::service_cycles(Bytes bytes) const {
  const auto serialization =
      static_cast<Cycles>(std::ceil(static_cast<double>(bytes) / bandwidth_));
  return setup_cycles_ + serialization;
}

Cycles Resource::peek_completion(Cycles ready, Bytes bytes) const {
  const Cycles start = ready > busy_until_ ? ready : busy_until_;
  return start + service_cycles(bytes);
}

Cycles Resource::occupy(Cycles start, Bytes bytes) {
  DISTMCU_CHECK(start >= busy_until_, "Resource::occupy start precedes busy horizon");
  const Cycles service = service_cycles(bytes);
  busy_until_ = start + service;
  total_bytes_ += bytes;
  busy_cycles_ += service;
  ++num_transfers_;
  return busy_until_;
}

Cycles Resource::transfer(Cycles ready, Bytes bytes) {
  const Cycles start = ready > busy_until_ ? ready : busy_until_;
  const Cycles service = service_cycles(bytes);
  busy_until_ = start + service;
  total_bytes_ += bytes;
  busy_cycles_ += service;
  ++num_transfers_;
  return busy_until_;
}

void Resource::reset() {
  busy_until_ = 0;
  total_bytes_ = 0;
  busy_cycles_ = 0;
  num_transfers_ = 0;
}

}  // namespace distmcu::sim
