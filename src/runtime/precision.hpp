#ifndef DISTMCU_RUNTIME_PRECISION_HPP
#define DISTMCU_RUNTIME_PRECISION_HPP

// Per-deployment precision as a first-class property. This header is
// the ONE home of numeric precision widths in the serving stack: every
// other file derives its bit- and byte-counts from these enums (the
// raw-precision-int domain-lint rule enforces it), so a deployment's
// declared precision cannot silently disagree with how its bytes are
// accounted.

#include <cstdint>

#include "chip/chip_config.hpp"
#include "partition/memory_planner.hpp"

namespace distmcu::runtime {

/// Arithmetic precision a deployment's block program runs at.
///  * fp16: the seed float path — DistributedBlock numerics, the
///    platform's default PrecisionConfig (2-byte weights, int16 MACs).
///  * int8: the paper's shipped A8W8 path — FFN and attention-output
///    GEMMs through quant::int_kernels with int32 all-reduce partials
///    (reduction-order-invariant, so token streams are bit-exact under
///    any tree shape or chip count), 1-byte weights, int8-rate MACs.
enum class Precision { fp16, int8 };

inline constexpr int kBitsPerByte = 8;  // lint-domain: allow

/// Storage layout of a deployment's KV-cache entries, orthogonal to the
/// arithmetic precision (an int8 deployment may keep fp16 KV and vice
/// versa is rejected — packed layouts require the int8 block, whose
/// append path actually quantizes the rows it stores).
///  * native: whatever the platform PrecisionConfig::kv_bytes says —
///    byte-identical accounting to the pre-precision engine.
///  * fp16 / int8 / int4: explicit per-entry widths; pages and slots
///    cost proportionally fewer (or more) bytes in the shared arena,
///    which is what multiplies concurrent-request capacity at equal L2.
enum class KvLayout { native, fp16, int8, int4 };

[[nodiscard]] constexpr const char* precision_name(Precision p) {
  switch (p) {
    case Precision::fp16: return "fp16";
    case Precision::int8: return "int8";
  }
  return "?";
}

[[nodiscard]] constexpr const char* kv_layout_name(KvLayout l) {
  switch (l) {
    case KvLayout::native: return "native";
    case KvLayout::fp16: return "fp16";
    case KvLayout::int8: return "int8";
    case KvLayout::int4: return "int4";
  }
  return "?";
}

/// Bits one stored KV entry occupies under `layout`, given the
/// platform-native width (`native_bits`, from PrecisionConfig::kv_bytes).
/// KvLayout::native returns native_bits exactly, which is what keeps
/// every pre-precision deployment's byte accounting bit-identical.
[[nodiscard]] constexpr int kv_layout_bits(KvLayout layout, int native_bits) {
  constexpr int kFp16Bits = 16;   // lint-domain: allow
  constexpr int kInt8Bits = 8;    // lint-domain: allow
  constexpr int kInt4Bits = 4;    // lint-domain: allow
  switch (layout) {
    case KvLayout::native: return native_bits;
    case KvLayout::fp16: return kFp16Bits;
    case KvLayout::int8: return kInt8Bits;
    case KvLayout::int4: return kInt4Bits;
  }
  return native_bits;
}

/// Bytes `n` packed KV entries of `elem_bits` each occupy (round up to
/// whole bytes — int4 packs two entries per byte).
[[nodiscard]] constexpr Bytes packed_bytes(std::uint64_t elems, int elem_bits) {
  const auto bpb = static_cast<std::uint64_t>(kBitsPerByte);
  return static_cast<Bytes>(
      (elems * static_cast<std::uint64_t>(elem_bits) + bpb - 1) / bpb);
}

/// Rescale a native-width KV byte count to a packed layout: `bytes` was
/// accounted at `native_bits` per entry; the packed layout stores the
/// same entries at `elem_bits` each (round up to whole bytes).
/// Identity when elem_bits == native_bits, which keeps every
/// KvLayout::native deployment bit-identical to the pre-precision
/// engine.
[[nodiscard]] constexpr Bytes scale_kv_bytes(Bytes bytes, int elem_bits,
                                             int native_bits) {
  if (elem_bits == native_bits) return bytes;
  const auto b = static_cast<std::uint64_t>(bytes);
  const auto nb = static_cast<std::uint64_t>(native_bits);
  return static_cast<Bytes>(
      (b * static_cast<std::uint64_t>(elem_bits) + nb - 1) / nb);
}

/// The platform PrecisionConfig a declared precision runs the cost
/// model at. fp16 keeps `native` (the system's own config) untouched;
/// int8 is the paper's A8W8 deployment — 1-byte weights and
/// activations, 1-byte KV entries, MACs at the cluster's int8 rate.
[[nodiscard]] inline partition::PrecisionConfig precision_numerics(
    Precision p, const partition::PrecisionConfig& native) {
  if (p == Precision::fp16) return native;
  partition::PrecisionConfig q;
  q.weight_bytes = chip::precision_bytes(chip::Precision::int8);
  q.act_bytes = chip::precision_bytes(chip::Precision::int8);
  q.kv_bytes = chip::precision_bytes(chip::Precision::int8);
  q.mac_precision = chip::Precision::int8;
  return q;
}

}  // namespace distmcu::runtime

#endif  // DISTMCU_RUNTIME_PRECISION_HPP
