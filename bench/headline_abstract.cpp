// Reproduces the paper's abstract/headline metrics side by side with our
// measurements:
//   * TinyLlama AR, 8 chips: 0.64 mJ, 0.54 ms per block, 26.1x speedup,
//     27.2x EDP improvement vs a single chip;
//   * TinyLlama prompt, 8 chips: 9.9x;
//   * MobileBERT, 4 chips: 38.8 ms runtime, 4.7x speedup;
//   * scaled-up model, 64 chips: 60.1x, 1.3x energy reduction.
// Absolute values depend on the substituted platform model; the bands
// checked here are the paper's qualitative claims (see EXPERIMENTS.md).
//
// --json <path> writes the rows machine-readably for CI artifacts.
// Stable schema (doubles round-trip exact; consumers key on "schema"
// and ignore unknown keys):
//
//   {"schema": "distmcu.headline.v1",
//    "metrics": [{"metric": "...", "paper": x, "measured": x,
//                 "band_pass": true|false}],
//    "all_bands_pass": true|false}
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"

using namespace distmcu;

namespace {
struct Row {
  const char* metric;
  double paper;
  double measured;
  bool pass;
};
}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  const auto sys = runtime::SystemConfig::siracusa_system();
  const double freq = sys.chip.freq_hz;
  const auto llama = model::TransformerConfig::tiny_llama_42m();
  const auto scaled = model::TransformerConfig::tiny_llama_scaled(64);
  const auto bert = model::TransformerConfig::mobile_bert();

  const auto ar = bench::sweep_chips(llama, model::Mode::autoregressive, {1, 8});
  const auto pr = bench::sweep_chips(llama, model::Mode::prompt, {1, 8});
  const auto mb = bench::sweep_chips(bert, model::Mode::prompt, {1, 4});
  const auto sc = bench::sweep_chips(scaled, model::Mode::autoregressive,
                                     {1, 16, 32, 64});

  const double ar_ms = util::cycles_to_ms(ar[1].report.block_cycles, freq);
  const double ar_mj = ar[1].energy.total_mj();
  const double edp1 = ar[0].energy.total_mj() *
                      util::cycles_to_ms(ar[0].report.block_cycles, freq);
  const double edp8 = ar_mj * ar_ms;
  const double mb_ms = util::cycles_to_ms(mb[1].report.block_cycles, freq);
  const double sc_energy_ratio =
      sc[1].energy.total_mj() / sc[3].energy.total_mj();  // 16-chip DB vs 64 resident

  std::vector<Row> rows{
      {"TinyLlama AR 8-chip energy/block [mJ]", 0.64, ar_mj,
       ar_mj > 0.3 && ar_mj < 1.3},
      {"TinyLlama AR 8-chip latency/block [ms]", 0.54, ar_ms,
       ar_ms > 0.25 && ar_ms < 1.1},
      {"TinyLlama AR speedup @8 [x]", 26.1, ar[1].speedup,
       ar[1].speedup > 16 && ar[1].speedup < 36},
      {"TinyLlama AR EDP improvement @8 [x]", 27.2, edp1 / edp8,
       edp1 / edp8 > 16 && edp1 / edp8 < 40},
      {"TinyLlama prompt speedup @8 [x]", 9.9, pr[1].speedup,
       pr[1].speedup > 8 && pr[1].speedup < 14},
      {"MobileBERT 4-chip runtime/block [ms]", 38.8, mb_ms,
       mb_ms > 19 && mb_ms < 80},
      {"MobileBERT speedup @4 [x]", 4.7, mb[1].speedup,
       mb[1].speedup > 3.8 && mb[1].speedup < 5.5},
      {"Scaled-up AR speedup @64 [x]", 60.1, sc[3].speedup,
       sc[3].speedup > 45 && sc[3].speedup < 64},
      {"Scaled-up energy reduction (resident vs DB) [x]", 1.3, sc_energy_ratio,
       sc_energy_ratio > 1.2},
  };

  std::cout << "Headline metrics — paper vs this reproduction\n";
  util::Table table({"metric", "paper", "measured", "band_check"});
  bool all = true;
  for (const auto& r : rows) {
    table.row().add(r.metric).add(r.paper, 2).add(r.measured, 2)
        .add(r.pass ? "PASS" : "FAIL");
    all = all && r.pass;
  }
  table.print(std::cout);
  std::cout << "\noverall: " << (all ? "ALL BANDS PASS" : "SOME BANDS FAIL")
            << "  (bands are documented in EXPERIMENTS.md; absolute values use "
               "the substituted analytic platform model)\n";

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::cerr << "cannot open --json path " << json_path << "\n";
      return 2;
    }
    os.precision(17);
    os << "{\n  \"schema\": \"distmcu.headline.v1\",\n  \"metrics\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      os << (i == 0 ? "" : ",") << "\n    {\"metric\": \""
         << bench::json_escape(r.metric)
         << "\", \"paper\": " << r.paper << ", \"measured\": " << r.measured
         << ", \"band_pass\": " << (r.pass ? "true" : "false") << "}";
    }
    os << "\n  ],\n  \"all_bands_pass\": " << (all ? "true" : "false")
       << "\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
