#ifndef DISTMCU_RUNTIME_SCHEDULER_HPP
#define DISTMCU_RUNTIME_SCHEDULER_HPP

#include <cstddef>
#include <memory>
#include <vector>

#include "util/units.hpp"

namespace distmcu::runtime {

using RequestId = int;

/// `deadline_cycles == 0` in an SloSpec means "no deadline".
inline constexpr Cycles kNoDeadline = 0;

/// Per-request service-level objective attached at submit time.
struct SloSpec {
  /// Static priority class; LOWER values are more urgent (class 0 is the
  /// most urgent). Only PriorityScheduler consults it.
  int priority = 0;
  /// Completion deadline in cycles relative to the submit-time engine
  /// timeline; 0 means no deadline. Deadlines drive EdfScheduler and the
  /// ServingStats miss accounting under every policy.
  Cycles deadline_cycles = kNoDeadline;
};

/// Admission-ordering policy of the batched serving engine. The engine
/// owns the queue and the KV slots; whenever a slot frees up it asks the
/// policy which queued request to admit next. Policies are stateless
/// rankers — a pure function of the queue snapshot and the engine
/// timeline — so one instance can be shared across engines and replay is
/// deterministic by construction.
class Scheduler {
 public:
  /// Queue-snapshot view of one pending request, in submit order.
  struct Candidate {
    RequestId id = -1;
    /// Deployed model this request targets (0 in single-model serving).
    /// The built-in policies rank across models through the per-model
    /// `estimated_cost` rather than consulting this directly; custom
    /// policies may partition on it.
    int model = 0;
    /// SloSpec fields, deadline already resolved to the absolute engine
    /// timeline (kNoDeadline when the request carries none).
    int priority = 0;
    Cycles deadline_at = kNoDeadline;
    Cycles submitted_at = 0;  ///< engine timeline at submit
    int submit_seq = 0;       ///< monotone submit order (FIFO tie-break)
    /// Cost-model service estimate: the request's prefill charge plus
    /// new_tokens decode forwards at the deployment's block-program
    /// cycles, excluding batch-shared streaming and queueing. EDF uses
    /// it to separate still-feasible deadlines from lost causes.
    Cycles estimated_cost = 0;
  };

  virtual ~Scheduler() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Index into `queue` of the request to admit at engine time `now`.
  /// `queue` is non-empty and listed in submit order. Must return a
  /// valid index; the engine rejects anything out of range.
  [[nodiscard]] virtual std::size_t pick(
      const std::vector<Candidate>& queue, Cycles now) const = 0;
};

/// Strict submit-order admission — the engine's historical behavior,
/// bit-exact with the pre-scheduler engine.
class FifoScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "fifo"; }
  [[nodiscard]] std::size_t pick(const std::vector<Candidate>& queue,
                                 Cycles now) const override;
};

/// Static priority classes with starvation aging: the effective class of
/// a queued request drops by one for every `aging_cycles` it has waited,
/// so a bounded-priority workload can delay a low-priority request only
/// by a bounded number of classes. Ties resolve in submit order, which
/// makes the policy FIFO within a class and starvation-free whenever
/// aging is enabled and priorities are bounded.
class PriorityScheduler final : public Scheduler {
 public:
  struct Options {
    /// Cycles of queue wait that promote a request by one priority
    /// class; 0 disables aging (pure static classes).
    Cycles aging_cycles = 5'000'000;
  };

  PriorityScheduler() : opts_{} {}
  explicit PriorityScheduler(Options opts) : opts_(opts) {}

  [[nodiscard]] const char* name() const override { return "priority"; }
  [[nodiscard]] std::size_t pick(const std::vector<Candidate>& queue,
                                 Cycles now) const override;
  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  Options opts_;
};

/// Earliest-deadline-first over the absolute deadlines, with the cost
/// estimator separating requests that can still make their deadline from
/// lost causes: a request whose `now + estimated_cost` already exceeds
/// its deadline is a miss no matter when it runs, so it is demoted
/// behind every still-feasible deadline (but stays ahead of the
/// no-deadline best-effort tail). Within each band the order is deadline
/// then submit order; best-effort requests are FIFO.
class EdfScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "edf"; }
  [[nodiscard]] std::size_t pick(const std::vector<Candidate>& queue,
                                 Cycles now) const override;
};

/// Eviction-ranking policy of the preemptive serving engine. The engine
/// detects the trigger itself — a pending request whose deadline the
/// cost estimator proves feasible if started now but infeasible after
/// the earliest natural slot release — and offers the policy the
/// running requests whose eviction would actually unblock it under the
/// KV budget; the policy names the victim or declines. A victim is
/// checkpointed (KV contents + position), its tenant-tagged slot
/// reclaimed, and it re-enters the queue to resume later with a
/// bit-exact token stream. Like Scheduler, policies are stateless
/// rankers, so replay stays deterministic and instances can be shared.
class PreemptionPolicy {
 public:
  /// Snapshot of one evictable running request (mid-decode: prefill
  /// complete, tokens still to generate).
  struct Victim {
    RequestId id = -1;
    int model = 0;
    int priority = 0;
    /// Absolute deadline (kNoDeadline when best-effort).
    Cycles deadline_at = kNoDeadline;
    /// Estimated service demand still ahead of it.
    Cycles remaining_cost = 0;
    /// Decode progress: tokens committed of new_tokens. Less progress
    /// means a smaller KV checkpoint to move.
    int generated = 0;
    int new_tokens = 0;
    /// Slot held beyond the model's static-split quota (a watermark
    /// borrow) — reclaiming it repays another tenant's reserve.
    bool borrowed = false;
    int times_evicted = 0;
  };

  virtual ~PreemptionPolicy() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Index into `victims` (non-empty) of the request to evict so that
  /// `starved` — a pending request with a feasible deadline about to
  /// become infeasible — can take its slot, or -1 to decline. The
  /// engine rejects out-of-range picks.
  [[nodiscard]] virtual int pick_victim(const std::vector<Victim>& victims,
                                        const Scheduler::Candidate& starved,
                                        Cycles now) const = 0;
};

/// Built-in eviction ranking. Protections first: a victim already
/// evicted `max_evictions` times is never picked again (bounding
/// checkpoint thrash), and neither is one whose own deadline is still
/// feasible and no later than the starved request's (preemption must
/// not trade one attainable deadline for an equal-or-worse one).
/// Among the rest it prefers, in order: watermark-borrowed slots,
/// best-effort requests, already-infeasible deadlines, then
/// latest-deadline-first — and within a band the least decode progress
/// (smallest checkpoint), then the lowest id.
class DeadlineAwarePreemption final : public PreemptionPolicy {
 public:
  struct Options {
    /// Evictions one request may suffer before it becomes untouchable;
    /// bounds the total checkpoint traffic any request can generate.
    int max_evictions = 2;
  };

  DeadlineAwarePreemption() : opts_{} {}
  explicit DeadlineAwarePreemption(Options opts) : opts_(opts) {}

  [[nodiscard]] const char* name() const override { return "deadline_aware"; }
  [[nodiscard]] int pick_victim(const std::vector<Victim>& victims,
                                const Scheduler::Candidate& starved,
                                Cycles now) const override;
  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  Options opts_;
};

/// Built-in policy set, for benches and CLI surfaces.
enum class SchedulePolicy { fifo, priority, edf };

[[nodiscard]] const char* policy_name(SchedulePolicy policy);
[[nodiscard]] std::shared_ptr<const Scheduler> make_scheduler(
    SchedulePolicy policy);

}  // namespace distmcu::runtime

#endif  // DISTMCU_RUNTIME_SCHEDULER_HPP
