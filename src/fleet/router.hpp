#ifndef DISTMCU_FLEET_ROUTER_HPP
#define DISTMCU_FLEET_ROUTER_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fleet/routing_policy.hpp"
#include "runtime/batched_engine.hpp"
#include "util/units.hpp"

namespace distmcu::fleet {

using FleetRequestId = std::int64_t;

/// Inter-node network cost model, per PAPERS.md's networked-MCU
/// treatment: each message pays a fixed per-hop latency plus a
/// serialization charge per byte on the node's uplink. Requests carry
/// their prompt token ids in, responses carry the generated tokens back;
/// both directions add framing overhead.
struct LinkModel {
  /// Fixed per-message cycles (propagation + protocol turnaround).
  Cycles latency_cycles = 0;
  /// Serialization cycles per payload byte (0 models an ideal link).
  double cycles_per_byte = 0.0;
  /// Wire size of one token id.
  Bytes bytes_per_token = 4;
  /// Per-message framing: headers, SLO metadata, completion status.
  Bytes header_bytes = 64;

  /// Cycles one message of `payload` bytes occupies the link.
  [[nodiscard]] Cycles transfer_cycles(Bytes payload) const;
  [[nodiscard]] Bytes request_bytes(int prompt_tokens) const;
  [[nodiscard]] Bytes response_bytes(int generated_tokens) const;
};

/// Final outcome of one fleet-routed request: the node-local
/// RequestResult plus the global-timeline accounting (submit at the
/// router, absolute fleet deadline, completion once the response has
/// crossed the link back). The node-local token stream in `result.gen`
/// stays bit-exact with a dedicated single-node engine — routing decides
/// placement, never content.
struct FleetResult {
  FleetRequestId id = -1;
  int node = -1;                        ///< fleet node index it ran on
  runtime::RequestId node_request = -1; ///< its id on that node's engine
  runtime::RequestResult result;        ///< node-local view
  Cycles submitted_at = 0;   ///< global clock at Router::submit
  Cycles deadline_at = runtime::kNoDeadline;  ///< absolute, global clock
  /// Global clock when the response landed back at the router: node
  /// finish plus the response transfer on the node's link.
  Cycles finished_at = 0;

  [[nodiscard]] bool missed_deadline() const {
    return deadline_at != runtime::kNoDeadline && finished_at > deadline_at;
  }
};

/// Fleet-wide serving metrics. Conservation (pinned by the CI gate and
/// the randomized suite): offered == placed + rejected;
/// routed == placed + misrouted; per node,
/// attempts == placed + link_rejected + serving.rejected; and after a
/// drain placed == completed + shed.
struct FleetStats {
  struct Node {
    std::string name;
    std::uint64_t attempts = 0;  ///< dispatches the router sent this node
    int placed = 0;              ///< accepted submits
    int link_rejected = 0;  ///< dispatches refused for link infeasibility
    int completed = 0;
    Cycles transfer_cycles = 0;  ///< both directions on its link
    runtime::ServingStats serving;  ///< engine snapshot
  };

  int offered = 0;   ///< Router::submit calls
  int placed = 0;    ///< offered requests some node accepted
  int rejected = 0;  ///< offered requests nobody accepted
  /// Split of `rejected`: no node deploys the target model / every
  /// eligible node refused (engine rejection or link infeasibility).
  int rejected_no_model = 0;
  int rejected_all_nodes = 0;
  std::uint64_t routed = 0;     ///< dispatch attempts across all nodes
  std::uint64_t misrouted = 0;  ///< attempts the target node refused
  int completed = 0;
  int shed = 0;  ///< placed, then dropped by a node's fair shedding
  int slo_requests = 0;     ///< completed requests that carried a deadline
  int deadline_misses = 0;  ///< fleet-level: response landed past deadline
  Cycles request_transfer_cycles = 0;
  Cycles response_transfer_cycles = 0;
  Bytes transfer_bytes = 0;
  /// Global clock when the last response landed (0 before any).
  Cycles makespan = 0;
  std::vector<Node> per_node;

  [[nodiscard]] double deadline_miss_rate() const {
    return slo_requests == 0 ? 0.0
                             : static_cast<double>(deadline_misses) /
                                   static_cast<double>(slo_requests);
  }
};

/// Load-balances a global request stream across many BatchedEngine
/// nodes with heterogeneous deployments (different models, chip counts,
/// KV page configs) in one simulated timeline, charging each node's
/// LinkModel on dispatch and completion.
///
/// Time: the router keeps one global clock (the non-decreasing `at` of
/// submit()). Each node's engine clock only advances while it has work,
/// so the router tracks a per-node offset — node global time = offset +
/// engine clock — and bumps the offset across idle gaps. Before every
/// routing decision all nodes are advanced to the arrival time, so the
/// policy's queue/backlog views are a coherent snapshot.
///
/// Engines are borrowed and must outlive the router; attach per-node
/// tracers (sim::Tracer::counters_only() keeps big fleets cheap) at
/// engine construction for per-node trace lanes.
class Router {
 public:
  explicit Router(std::shared_ptr<const RoutingPolicy> policy = nullptr);

  /// Register a node. `name` defaults to "node<i>". Returns the node
  /// index used in FleetResult/FleetStats.
  int add_node(runtime::BatchedEngine& engine, LinkModel link,
               std::string name = {});

  [[nodiscard]] int node_count() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] const std::string& node_name(int node) const;
  [[nodiscard]] const RoutingPolicy& policy() const { return *policy_; }

  /// Route one request for deployment `model` (a registry deployment
  /// name; nodes not deploying it are ineligible) arriving at global
  /// time `at` (must be >= every earlier submit's `at`). The SloSpec
  /// deadline is relative to `at` on the global clock; the node sees it
  /// shrunk by both link transfers, so a node-side attainment equals
  /// fleet-side attainment. Returns nullopt when no node accepts.
  std::optional<FleetRequestId> submit(const std::string& model,
                                       const std::vector<int>& prompt,
                                       int new_tokens, runtime::SloSpec slo,
                                       Cycles at);

  /// Drain every node and return all completions (fleet completion
  /// order). Like BatchedEngine::run_to_completion, returns the
  /// router-lifetime list — results accumulate across calls.
  [[nodiscard]] const std::vector<FleetResult>& run_to_completion();

  [[nodiscard]] const std::vector<FleetResult>& finished() const {
    return finished_;
  }

  /// Snapshot of the fleet counters plus each engine's live stats.
  [[nodiscard]] FleetStats stats() const;

 private:
  struct InFlight {
    FleetRequestId id = -1;
    Cycles submitted_at = 0;
    Cycles deadline_at = runtime::kNoDeadline;  // global clock
    Cycles est_cost = 0;
    Cycles response_link_cycles = 0;
    Bytes response_bytes = 0;
  };

  struct Node {
    runtime::BatchedEngine* engine = nullptr;
    LinkModel link;
    std::string name;
    /// Registry deployment name -> node-local ModelId.
    std::unordered_map<std::string, runtime::ModelId> models;
    /// Global time = offset + engine clock; grows across idle gaps.
    Cycles offset = 0;
    /// Sum of est_cost over in-flight placements (the policy's backlog).
    Cycles outstanding_est = 0;
    std::unordered_map<runtime::RequestId, InFlight> in_flight;
    std::size_t consumed_finished = 0;  ///< drained prefix of finished()
    std::size_t consumed_shed = 0;      ///< drained prefix of shed_ids()
    std::uint64_t attempts = 0;
    int placed = 0;
    int link_rejected = 0;
    int completed = 0;
    Cycles transfer_cycles = 0;
  };

  [[nodiscard]] Cycles node_now(const Node& n) const;
  /// Step `n` until its global clock reaches `target`, draining
  /// completions after every step; bumps the offset over idle gaps.
  void advance(Node& n, Cycles target);
  void drain_completions(Node& n);
  void drain_shed(Node& n);
  [[nodiscard]] RoutingPolicy::NodeView view_for(
      const Node& n, int index, const std::string& model,
      const std::vector<int>& prompt, int new_tokens) const;

  std::shared_ptr<const RoutingPolicy> policy_;
  std::vector<Node> nodes_;
  std::vector<FleetResult> finished_;
  FleetRequestId next_id_ = 0;
  Cycles last_submit_at_ = 0;

  // Fleet counters (per-node ones live on Node).
  int offered_ = 0;
  int placed_ = 0;
  int rejected_ = 0;
  int rejected_no_model_ = 0;
  int rejected_all_nodes_ = 0;
  std::uint64_t routed_ = 0;
  std::uint64_t misrouted_ = 0;
  int completed_ = 0;
  int shed_ = 0;
  int slo_requests_ = 0;
  int deadline_misses_ = 0;
  Cycles request_transfer_cycles_ = 0;
  Cycles response_transfer_cycles_ = 0;
  Bytes transfer_bytes_ = 0;
  Cycles makespan_ = 0;
};

}  // namespace distmcu::fleet

#endif  // DISTMCU_FLEET_ROUTER_HPP
