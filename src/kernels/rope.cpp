#include "kernels/rope.hpp"

#include <cmath>

#include "util/check.hpp"

namespace distmcu::kernels {

void rope_apply(std::span<float> x, int n_pos, int head_dim, int pos_offset,
                float base) {
  DISTMCU_CHECK(n_pos > 0 && head_dim > 0, "rope: dimensions must be positive");
  DISTMCU_CHECK(head_dim % 2 == 0, "rope: head_dim must be even");
  DISTMCU_CHECK(x.size() == static_cast<std::size_t>(n_pos) * static_cast<std::size_t>(head_dim),
              "rope: size mismatch");
  for (int i = 0; i < n_pos; ++i) {
    const auto pos = static_cast<float>(pos_offset + i);
    float* row = x.data() + static_cast<std::size_t>(i) * head_dim;
    for (int j = 0; j < head_dim; j += 2) {
      const float freq =
          std::pow(base, -static_cast<float>(j) / static_cast<float>(head_dim));
      const float angle = pos * freq;
      const float c = std::cos(angle);
      const float s = std::sin(angle);
      const float x0 = row[j];
      const float x1 = row[j + 1];
      row[j] = x0 * c - x1 * s;
      row[j + 1] = x0 * s + x1 * c;
    }
  }
}

}  // namespace distmcu::kernels
