#include "quant/int_kernels.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace distmcu::quant {

namespace {
template <typename Int, typename Acc>
void gemm_int(std::span<const Int> a, std::span<const Int> b, std::span<Acc> c,
              int m, int n, int k) {
  DISTMCU_CHECK(m > 0 && n > 0 && k > 0, "gemm_int: dimensions must be positive");
  DISTMCU_CHECK(a.size() == static_cast<std::size_t>(m) * static_cast<std::size_t>(k),
              "gemm_int: A size mismatch");
  DISTMCU_CHECK(b.size() == static_cast<std::size_t>(k) * static_cast<std::size_t>(n),
              "gemm_int: B size mismatch");
  DISTMCU_CHECK(c.size() == static_cast<std::size_t>(m) * static_cast<std::size_t>(n),
              "gemm_int: C size mismatch");
  for (int i = 0; i < m; ++i) {
    Acc* crow = c.data() + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) crow[j] = 0;
    const Int* arow = a.data() + static_cast<std::size_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      const auto av = static_cast<Acc>(arow[p]);
      if (av == 0) continue;
      const Int* brow = b.data() + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) {
        crow[j] += av * static_cast<Acc>(brow[j]);
      }
    }
  }
}
}  // namespace

void gemm_i8_i32(std::span<const std::int8_t> a, std::span<const std::int8_t> b,
                 std::span<std::int32_t> c, int m, int n, int k) {
  gemm_int<std::int8_t, std::int32_t>(a, b, c, m, n, k);
}

void gemm_i16_i64(std::span<const std::int16_t> a, std::span<const std::int16_t> b,
                  std::span<std::int64_t> c, int m, int n, int k) {
  gemm_int<std::int16_t, std::int64_t>(a, b, c, m, n, k);
}

void requant_i32_i8(std::span<const std::int32_t> acc, std::int32_t mult, int shift,
                    std::span<std::int8_t> out) {
  DISTMCU_CHECK(acc.size() == out.size(), "requant: size mismatch");
  DISTMCU_CHECK(shift >= 0 && shift < 63, "requant: bad shift");
  const std::int64_t rounding = shift > 0 ? (1ll << (shift - 1)) : 0;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    const std::int64_t v =
        (static_cast<std::int64_t>(acc[i]) * static_cast<std::int64_t>(mult) + rounding) >>
        shift;
    out[i] = static_cast<std::int8_t>(std::clamp<std::int64_t>(v, -128, 127));
  }
}

}  // namespace distmcu::quant
