#ifndef DISTMCU_RUNTIME_BATCHED_ENGINE_HPP
#define DISTMCU_RUNTIME_BATCHED_ENGINE_HPP

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "mem/arena.hpp"
#include "mem/paged_arena.hpp"
#include "model/kv_cache.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/kv_budget.hpp"
#include "runtime/model_registry.hpp"
#include "runtime/prefetch_pipeline.hpp"
#include "runtime/scheduler.hpp"
#include "sim/tracer.hpp"
#include "util/quantile_reservoir.hpp"

namespace distmcu::runtime {

/// Why the engine's last submit() returned nullopt (none after an
/// accepted submit). Distinguishing the backpressure reject from the
/// fail-fast one lets a client retry queue_full later but re-plan a
/// hopeless_deadline — resubmitting the same SLO would be refused again
/// even on an idle engine.
enum class Rejection {
  none,
  /// The queue backlog beyond the free KV slots reached max_pending
  /// (and fair shedding, when enabled, found nobody heavier to shed).
  queue_full,
  /// Fail-fast: the cost model proves the deadline unattainable even if
  /// the request started immediately on an idle engine.
  hopeless_deadline,
};

/// Final outcome of one served request. `gen` carries the request's own
/// token stream (bit-identical to an independent
/// InferenceSession::generate call with the same prompt) plus the
/// cycles/energy attributed to this request by the serving cost model.
struct RequestResult {
  RequestId id = -1;
  /// Deployed model this request ran against (0 in single-model serving).
  ModelId model = 0;
  GenerationResult gen;
  int admitted_step = -1;
  int finished_step = -1;
  /// Engine-timeline timestamps: residence in the batch, from the start
  /// of the request's own first prompt work (after earlier same-step
  /// prompt work of other requests) to the boundary at which its final
  /// token was committed — its own prefill end for new_tokens == 0,
  /// otherwise the end of its last decode phase. Other requests' work
  /// outside that span is never charged to it. Unlike the attributed
  /// cycles in `gen`, the span grows with batch contention.
  Cycles admitted_at = 0;
  Cycles finished_at = 0;
  /// SLO accounting: the spec the request was submitted with, its submit
  /// stamp, and its absolute deadline (kNoDeadline when none). The
  /// queueing delay is the admission wait — from submit to the start of
  /// the request's own first prompt work.
  SloSpec slo;
  Cycles submitted_at = 0;
  Cycles deadline_at = kNoDeadline;
  /// Times the request was preempted (checkpointed out of its KV slot)
  /// before completing; 0 on the non-preemptive path. Its token stream
  /// is bit-identical either way — eviction costs cycles, not tokens.
  int times_evicted = 0;

  [[nodiscard]] Cycles latency_cycles() const { return finished_at - admitted_at; }
  [[nodiscard]] Cycles queue_delay_cycles() const {
    return admitted_at - submitted_at;
  }
  /// Attained latency vs the deadline: submit-to-finish, which includes
  /// the queueing delay the scheduler controls.
  [[nodiscard]] Cycles attained_cycles() const {
    return finished_at - submitted_at;
  }
  [[nodiscard]] bool missed_deadline() const {
    return deadline_at != kNoDeadline && finished_at > deadline_at;
  }
};

/// Per-deployed-model slice of the serving metrics. Attribution is
/// exact: summed over models, attributed cycles/energy equal the
/// engine-wide totals, and generated-token counts partition
/// ServingStats::total_generated.
struct ModelServingStats {
  std::string model;  ///< registry deployment name
  int submitted = 0;  ///< accepted submits (rejects counted separately)
  int completed = 0;
  int rejected = 0;
  int total_generated = 0;
  /// Cycles/energy charged to this model's requests (its compute, its
  /// stall shares, its prompt streams) — live running sums, equal to the
  /// sum over its RequestResults once the engine drains.
  Cycles attributed_cycles = 0;
  double attributed_energy_mj = 0.0;
  /// Steps in which this model ran prompt work / a decode phase.
  int prefill_steps = 0;
  int decode_steps = 0;
  int slo_requests = 0;
  int deadline_misses = 0;
  /// Overload-path counters: accepted-then-shed requests, evictions of
  /// this model's running requests, their later resumes, and the
  /// SlotArena's running reclaim count for this tenant (== preemptions
  /// once the engine drains).
  int shed = 0;
  int preemptions = 0;
  int resumes = 0;
  int kv_slots_reclaimed = 0;
  /// This model's share of the decode-stream race: stall + hidden ==
  /// decode_steps * (its per-step serial weight stream).
  Cycles prefetch_stall_cycles = 0;
  Cycles stream_cycles_hidden = 0;
  /// Shared-KV-arena occupancy: the static-split reserve, the hard cap,
  /// and the most slots this model ever held at once. Under the
  /// static-split policy high_water <= quota always (zero cross-model
  /// leakage); borrowing policies may exceed the quota up to the cap.
  int kv_quota = 0;
  int kv_cap = 0;
  int kv_in_use_high_water = 0;
};

/// Aggregate serving metrics across all requests the engine processed.
/// total_cycles is the engine's simulated wall-clock; per-request
/// attributed cycles sum to it exactly (the visible remainder of the
/// shared weight stream is distributed deterministically).
struct ServingStats {
  Cycles total_cycles = 0;
  double total_energy_mj = 0.0;
  int total_generated = 0;
  int steps = 0;
  /// Steps in which at least one request ran a decode forward (and the
  /// batch consumed one shared block-weight stream per decoding model).
  int decode_steps = 0;
  /// Steps in which at least one request ran prompt work (a chunk in the
  /// chunked model, a whole prompt in the serial compatibility mode).
  int prefill_steps = 0;
  int peak_batch = 0;
  int completed = 0;
  int rejected = 0;
  /// Split of `rejected` by reason: backpressure vs fail-fast. Always
  /// rejected == rejected_queue_full + rejected_hopeless_deadline.
  int rejected_queue_full = 0;
  int rejected_hopeless_deadline = 0;
  /// Requests accepted at submit but dropped from the queue by fair
  /// load shedding before admission (never served, never completed).
  /// Conservation: submitted == completed + shed once the engine
  /// drains; offered == submitted + rejected.
  int shed = 0;
  /// Preemption totals: evictions, resumes, and the checkpoint traffic
  /// both directions cost on the engine timeline (cycles attributed to
  /// the evicted requests themselves).
  int preemptions = 0;
  int resumes = 0;
  Cycles preemption_cycles = 0;
  /// Deepest the pending queue ever got (evicted requests re-entering
  /// the queue count toward it).
  int queue_depth_peak = 0;
  /// Decode cycles the batch spent waiting for the next step's weight
  /// prefetch to land — nonzero only when the step's compute (prompt
  /// chunks included) cannot cover the stream. Per decoding model and
  /// step: max(0, stream - covering compute).
  Cycles prefetch_stall_cycles = 0;
  /// Serial stream cycles hidden behind compute by the prefetch overlap;
  /// `total_cycles + stream_cycles_hidden` is what the serial-charging
  /// cost model (compute + stream per step) would have reported.
  /// Invariant: prefetch_stall_cycles + stream_cycles_hidden == the sum
  /// over decode phases of the consuming model's per-step serial stream
  /// (decode_steps * stream in single-model serving).
  Cycles stream_cycles_hidden = 0;
  /// Prompt-phase cycles actually charged to requests: chunk compute
  /// plus the visible stream tails in the chunked model, whole prompts
  /// (compute + stream serially) in the compatibility mode. The chunked
  /// model's prompt-phase win over serial charging is
  /// (admissions * full prompt cost) - prefill_cycles.
  Cycles prefill_cycles = 0;
  /// Chunked model only: the prompt-chunk streams' port *windows* —
  /// from each step's start to the moment its chunk DMAs land, so FIFO
  /// queueing behind an in-flight decode fetch counts toward the window
  /// alongside the chunks' own service time. The window splits exactly
  /// into the part the step's compute covered (hidden) and the visible
  /// remainder that extended the step (stall, charged to the prefilling
  /// requests). Invariant:
  /// prefill_cycles_hidden + prefill_stall_cycles ==
  /// prefill_stream_cycles.
  Cycles prefill_stream_cycles = 0;
  Cycles prefill_cycles_hidden = 0;
  Cycles prefill_stall_cycles = 0;
  /// SLO accounting over *finished* requests: how many carried a
  /// deadline, how many finished past it, and the queueing-delay
  /// distribution (submit to the request's own first prompt work) by
  /// nearest-rank percentile over all finished requests. Refreshed at
  /// every completion, so mid-serving reads are consistent snapshots.
  int slo_requests = 0;
  int deadline_misses = 0;
  Cycles queue_delay_total = 0;
  Cycles queue_delay_p50 = 0;
  Cycles queue_delay_p95 = 0;
  Cycles queue_delay_p99 = 0;
  /// Paged-KV serving only (all zero in slot mode): admissions that
  /// adopted a registered prompt prefix, the prompt tokens those
  /// adoptions skipped recomputing, and how many adoptions forked
  /// copy-on-write mid-page (the adopted rows extend into the new
  /// request's first private page).
  int prefix_hits = 0;
  long long prefix_shared_tokens = 0;
  int cow_forks = 0;
  /// Per-deployed-model breakdowns, indexed by ModelId (one entry for
  /// the single-model engine). Exact partition of the engine totals.
  std::vector<ModelServingStats> per_model;

  [[nodiscard]] double deadline_miss_rate() const {
    return slo_requests == 0
               ? 0.0
               : static_cast<double>(deadline_misses) /
                     static_cast<double>(slo_requests);
  }
  [[nodiscard]] double aggregate_tokens_per_s(double freq_hz) const {
    return total_cycles == 0 ? 0.0
                             : static_cast<double>(total_generated) /
                                   util::cycles_to_s(total_cycles, freq_hz);
  }
  [[nodiscard]] double mj_per_token() const {
    return total_generated == 0 ? 0.0 : total_energy_mj / total_generated;
  }
};

/// Batched serving runtime over one or more deployed InferenceSessions:
/// accepts many concurrent generation requests — each tagged with the
/// deployed model it targets — and multiplexes them over the shared
/// silicon with continuous batching; requests join and leave the running
/// batch at token boundaries, never mid-block.
///
/// Single-model use (bit-identical to the historical engine):
///
///   BatchedEngine engine(session, {.max_batch = 4});
///   auto id = engine.submit({1, 17, 42}, 16);
///   auto results = engine.run_to_completion();
///
/// Multi-model use: a ModelRegistry deploys N (model::Config,
/// chip-count, block program) sessions, each with its own chunked- or
/// serial-prefill mode and cost decomposition, while every KV slot comes
/// from ONE shared, tenant-tagged mem::SlotArena partitioned by a
/// pluggable KvBudgetPolicy (static split / proportional-to-load /
/// watermark borrowing):
///
///   ModelRegistry reg;
///   auto llama = reg.add(llama_session, "tinyllama", /*chunk=*/4);
///   auto bert  = reg.add(bert_session, "mobilebert", /*chunk=*/8);
///   BatchedEngine engine(reg, {.total_kv_slots = 4});
///   auto a = engine.submit(llama, {1, 7, 3}, 12);
///   auto b = engine.submit(bert, {5, 9, 2, 4}, 0);  // encoder: prefill-only
///
/// Functional contract: every request decodes against its own pooled
/// KV-cache set from its model's KvCachePool, so its token stream is
/// bit-identical to an independent InferenceSession::generate call
/// regardless of what else shares the batch — across models included.
///
/// Cost model (per engine step, from TimedBlockSimulation block
/// reports): a step is a heterogeneous multi-model batch. Models take
/// fixed-order sub-phases on the shared grid; within a model's
/// sub-phase the single-model step semantics apply unchanged — prompt
/// chunks (or serially charged whole prompts at admission), then the
/// decode phase gated on that model's staged weights. Every model owns
/// one prefetch *channel* on the shared runtime::PrefetchPipeline L3
/// port: its next decode-weight fetch is issued at its decode start and
/// serializes FIFO behind every other model's in-flight streams, so
/// cross-model port contention — and the cross-model overlap win, where
/// one model's compute covers another model's weight stream — emerges
/// from the port rather than from scheduling logic. Streaming energy is
/// charged in full per consumed step: overlap hides time, not DMA
/// activity.
///
/// Admission is a single queue ranked by the pluggable runtime::Scheduler
/// across all models (per-model cost estimates feed EDF feasibility, so
/// a deadline on one model's request can preempt admission of
/// another's), gated by the KvBudgetPolicy: whenever a KV slot frees up
/// the engine offers the scheduler exactly the pending requests whose
/// model may take one more slot under the policy. By default admission
/// is non-preemptive — once admitted, a request keeps its slot to
/// completion. Configuring a PreemptionPolicy lifts that: when a
/// pending request's feasible deadline would be lost waiting for a
/// natural slot release, a running victim is checkpointed out of its
/// slot (KV contents + position, charged as L3 traffic on the shared
/// port) and later re-admitted to resume with a bit-identical token
/// stream.
///
/// KV-cache sets come from per-model pools sized at construction; the
/// byte reservation is charged to a shared mem::Arena through one
/// tenant-tagged mem::SlotArena (uniform slabs sized for the largest
/// tenant's set — the MCUBERT-style static shared-pool discipline), so
/// admission beyond the budget queues and submits beyond the queue bound
/// are rejected gracefully (nullopt, no UB). Construction throws
/// PlanError when any model's cap of resident KV sets does not fit its
/// deployment's L2 next to the single-request plan the memory planner
/// already validated.
class BatchedEngine {
 public:
  /// Single-model options (the historical surface).
  struct Options {
    int max_batch = 4;  ///< concurrent KV-cache pool slots
    /// Bound on the *queue* — the backlog beyond what the free KV slots
    /// can absorb at the next admission point. max_pending == 0 still
    /// accepts submits an idle engine can admit directly.
    int max_pending = 64;
    /// Prompt-chunk size of the chunked-prefill step model; 0 disables
    /// chunking (serial-prefill compatibility mode). Values beyond the
    /// deployment's prompt_len are clamped to one whole-prompt chunk.
    int prefill_chunk_tokens = 0;
    /// Admission-ordering policy; null selects the built-in FIFO
    /// scheduler (bit-exact with the pre-scheduler engine). Policies are
    /// stateless, so one instance may be shared across engines; see
    /// runtime::make_scheduler for the built-in set.
    std::shared_ptr<const Scheduler> scheduler = nullptr;
    /// Fail-fast admission control: refuse at submit() any deadline the
    /// cost model proves unattainable even on an idle engine (reported
    /// as Rejection::hopeless_deadline, distinct from queue_full). Off
    /// by default — the default config stays bit-exact with the
    /// non-preemptive engine.
    bool fail_fast_deadlines = false;
    /// Fair load shedding under sustained overload: when the bounded
    /// queue is full, a submit sheds the newest queued request of the
    /// tenant with the deepest backlog instead of rejecting the
    /// newcomer — unless the newcomer's own tenant is (one of) the
    /// heaviest, in which case the submit is rejected queue_full as
    /// before. Off by default.
    bool fair_shedding = false;
    /// Eviction policy enabling preemptive serving: when a pending
    /// request's feasible deadline would be missed by waiting for the
    /// earliest natural slot release, the engine checkpoints a running
    /// victim out of its KV slot (to be resumed later, bit-exactly).
    /// Null disables preemption entirely (the default).
    std::shared_ptr<const PreemptionPolicy> preemption = nullptr;
    /// Strict construction: run analysis::DeploymentAnalyzer over the
    /// configuration first and refuse any error-severity diagnostic by
    /// throwing analysis::AnalysisError (which carries the structured
    /// report, stable codes included) instead of whichever unstructured
    /// Error/PlanError plain construction would have hit first — and
    /// reject unsound configs plain construction accepts at all, such as
    /// trace-lane key collisions (DMCU-TRC-005). Off by default.
    bool strict = false;
    /// Page-granular KV serving (the vLLM layout against a fixed L2
    /// budget): > 0 switches the shared KV arena from whole-request
    /// slots to pages of this many token positions — max_batch then
    /// counts PAGES, admission charges only the pages a request's
    /// current length needs, and decode grows the mapping page by page.
    /// 0 (the default) keeps the historical slot engine bit-exactly.
    int kv_page_tokens = 0;
    /// Paged mode only: requests of a chunked-prefill deployment whose
    /// prompts share a registered common prefix adopt its read-only KV
    /// pages copy-on-write (per-page refcounts) instead of recomputing
    /// the shared prefill. Ignored in slot mode.
    bool prefix_sharing = false;
  };

  /// Multi-model options. Per-model knobs (chunk size, quota, cap) live
  /// on the ModelRegistry entries.
  struct MultiOptions {
    /// Shared KV arena size in slots, partitioned across the deployed
    /// models by the budget policy. Must cover at least one slot per
    /// deployment.
    int total_kv_slots = 4;
    int max_pending = 64;
    std::shared_ptr<const Scheduler> scheduler = nullptr;
    /// Shared-arena partitioning policy; null selects the built-in
    /// static split (each model owns exactly its quota).
    std::shared_ptr<const KvBudgetPolicy> kv_budget = nullptr;
    /// Overload controls, same semantics as the single-model Options;
    /// all default off so the default config is bit-exact with the
    /// non-preemptive engine.
    bool fail_fast_deadlines = false;
    bool fair_shedding = false;
    std::shared_ptr<const PreemptionPolicy> preemption = nullptr;
    /// Strict construction: analyzer-gated, same semantics as
    /// Options::strict.
    bool strict = false;
    /// Page-granular KV serving; > 0 makes total_kv_slots count pages of
    /// this many token positions (clamped per tenant to its ar_context)
    /// instead of whole-request slots. Quotas and caps are then in
    /// pages. Same semantics as Options::kv_page_tokens.
    int kv_page_tokens = 0;
    /// Copy-on-write prompt-prefix sharing across a chunked tenant's
    /// requests (paged mode only). Same semantics as
    /// Options::prefix_sharing.
    bool prefix_sharing = false;
  };

  /// Multi-model engine over `registry` (every session must outlive the
  /// engine). `tracer`, when non-null, receives one span per charge with
  /// the owning request id — and, when more than one model is deployed,
  /// the model id — tagged.
  explicit BatchedEngine(const ModelRegistry& registry, MultiOptions opts,
                         sim::Tracer* tracer = nullptr);

  /// Single-model engine; `session` must outlive the engine. Exactly the
  /// multi-model engine with one deployment whose quota and cap are
  /// max_batch.
  explicit BatchedEngine(const InferenceSession& session, Options opts,
                         sim::Tracer* tracer = nullptr);
  explicit BatchedEngine(const InferenceSession& session)
      : BatchedEngine(session, Options{}) {}

  /// One queued generation request — THE submit surface. Designated
  /// initializers name every field at the call site, so routers, benches
  /// and docs stop hand-assembling positional argument lists:
  ///
  ///   engine.submit({.model = m, .prompt = {1, 2, 3}, .new_tokens = 8,
  ///                  .slo = {.priority = 1}});
  struct Request {
    ModelId model = 0;
    std::vector<int> prompt;
    /// 0 serves encoder-style prefill-only work (e.g. MobileBERT
    /// classification).
    int new_tokens = 0;
    /// Priority class and completion deadline relative to the
    /// submit-time engine timeline; the configured Scheduler orders
    /// admission on it across models, and ServingStats tracks
    /// attainment under every policy.
    SloSpec slo{};
  };

  /// Queue `req` against its deployed model. Throws distmcu::Error on
  /// contract violations (unknown model, empty prompt, context
  /// overflow, prompt longer than that deployment's static prefill
  /// shape `prompt_len`) exactly like InferenceSession::generate;
  /// returns nullopt when the queue backlog beyond the free KV slots
  /// reaches max_pending (graceful backpressure — rejects are not SLO
  /// misses; see last_rejection()).
  [[nodiscard]] std::optional<RequestId> submit(Request req);

  /// Positional compatibility shim over submit(Request).
  [[nodiscard]] std::optional<RequestId> submit(ModelId model,
                                                std::vector<int> prompt,
                                                int new_tokens,
                                                SloSpec slo = {}) {
    return submit(Request{.model = model,
                          .prompt = std::move(prompt),
                          .new_tokens = new_tokens,
                          .slo = slo});
  }

  /// Single-model positional shim: submit against model 0.
  [[nodiscard]] std::optional<RequestId> submit(std::vector<int> prompt,
                                                int new_tokens,
                                                SloSpec slo = {}) {
    return submit(Request{.model = 0,
                          .prompt = std::move(prompt),
                          .new_tokens = new_tokens,
                          .slo = slo});
  }

  /// The admission policy in effect (the built-in FIFO instance when the
  /// options carried none).
  [[nodiscard]] const Scheduler& scheduler() const { return *scheduler_; }
  /// The KV partitioning policy in effect (the built-in static split
  /// when the options carried none).
  [[nodiscard]] const KvBudgetPolicy& kv_budget() const { return *budget_; }
  /// Why the most recent submit() returned nullopt (none after an
  /// accepted submit).
  [[nodiscard]] Rejection last_rejection() const { return last_rejection_; }
  /// Ids of requests accepted at submit but later dropped by fair load
  /// shedding, in shed order. Disjoint from finished() — conservation
  /// is submitted == completed + shed once the engine drains.
  [[nodiscard]] const std::vector<RequestId>& shed_ids() const {
    return shed_ids_;
  }

  /// Advance one token boundary: admit pending requests into free KV
  /// slots under the budget policy, then give every deployed model its
  /// sub-phase — advance its prefilling requests by one prompt chunk
  /// (the whole prompt at admission when chunking is disabled for it)
  /// and decode one token for every of its active requests past
  /// prefill. Returns false when no work remains.
  bool step();

  /// Drain the engine and return all finished requests (order of
  /// completion).
  [[nodiscard]] std::vector<RequestResult> run_to_completion();

  [[nodiscard]] const ServingStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<RequestResult>& finished() const {
    return finished_;
  }
  [[nodiscard]] int active_requests() const { return static_cast<int>(active_.size()); }
  [[nodiscard]] int pending_requests() const { return static_cast<int>(pending_.size()); }
  [[nodiscard]] const mem::Arena& kv_arena() const { return kv_arena_; }
  /// Slot-mode budget arena; throws when the engine runs paged.
  [[nodiscard]] const mem::SlotArena& kv_slots() const;
  /// True when the engine serves page-granular KV (kv_page_tokens > 0).
  [[nodiscard]] bool paged() const { return kv_pages_.has_value(); }
  /// Paged-mode budget arena; throws when the engine runs slots.
  [[nodiscard]] const mem::PagedKvArena& kv_pages() const;
  /// Effective page size of one deployed model in token positions
  /// (kv_page_tokens clamped to its ar_context; 0 in slot mode).
  [[nodiscard]] int page_tokens(ModelId m) const;
  /// Pages currently pinned by registered prompt prefixes (paged mode
  /// with prefix sharing; the only occupancy that survives a drain).
  [[nodiscard]] int prefix_cache_pages() const;
  /// Registered prompt-prefix entries across all tenants.
  [[nodiscard]] int prefix_cache_entries() const;

  [[nodiscard]] int model_count() const { return static_cast<int>(tenants_.size()); }
  [[nodiscard]] const std::string& model_name(ModelId m) const;
  /// Static-split reserve / hard cap of one deployed model, in slots.
  [[nodiscard]] int model_kv_quota(ModelId m) const;
  [[nodiscard]] int model_kv_cap(ModelId m) const;
  /// Effective prompt-chunk size of one deployed model (0 = serial
  /// prefill). The zero-arg form keeps the single-model surface.
  [[nodiscard]] int chunk_tokens(ModelId m) const;
  [[nodiscard]] int chunk_tokens() const { return chunk_tokens(0); }

  /// Idle-engine service-demand estimate for one request shape on a
  /// deployed model — the same block-program estimate EDF admission,
  /// fail-fast and preemption already rank on, exposed so a fleet
  /// router can compare placement cost across heterogeneous nodes
  /// without submitting. Same shape contract as submit(): 1 <=
  /// prompt_tokens <= the deployment's prefill length, new_tokens >= 0.
  [[nodiscard]] Cycles estimate_cost(ModelId m, int prompt_tokens,
                                     int new_tokens) const;

  /// Longest prompt prefix (in tokens) this engine's CoW prefix cache
  /// already holds for `prompt` on model `m` — 0 when prefix sharing is
  /// off or nothing matches. Fleet prefix-affinity routing steers a
  /// request to the node with the deepest match so its prefill rides
  /// the shared pages instead of recomputing.
  [[nodiscard]] int prefix_match_tokens(ModelId m,
                                        const std::vector<int>& prompt) const;

  /// Static model shape of one deployment (prompt_len / ar_context
  /// bound what submit() accepts; fleet routing pre-filters on them).
  [[nodiscard]] const model::TransformerConfig& model_config(ModelId m) const;

  /// Declared arithmetic precision / KV storage layout of one deployed
  /// model (fleet routing filters nodes on precision capability).
  [[nodiscard]] Precision model_precision(ModelId m) const;
  [[nodiscard]] KvLayout model_kv_layout(ModelId m) const;
  /// Bits one stored KV entry of model `m` costs in the shared arena —
  /// the per-precision scale factor of every KV byte count (pages,
  /// slots, checkpoint DMA).
  [[nodiscard]] int model_kv_elem_bits(ModelId m) const;

 private:
  /// One request in flight (queued, active, or checkpointed): the
  /// public Request payload plus the engine's scheduling, attribution,
  /// KV-residency, and preemption state.
  struct Inflight {
    RequestId id = -1;
    ModelId model = 0;
    std::vector<int> prompt;
    int new_tokens = 0;
    std::vector<int> tokens;
    int generated = 0;
    int prefill_pos = 0;  // prompt tokens already prefilled (chunked mode)
    int pos = 0;          // absolute position of the next decoded token
    int next = -1;        // pending token, emitted at the next boundary
    int slot = -1;        // shared-arena budget slot while active
    int set = -1;         // its model's KvCachePool set while active
    Cycles cycles = 0;    // attributed simulated cost
    double energy_mj = 0.0;
    int admitted_step = -1;
    /// Engine timeline at the start of the request's own first prompt
    /// work — after earlier same-step work of other requests, so
    /// latency_cycles() never charges it their cycles.
    Cycles admitted_at = 0;
    /// SLO state: the submitted spec, the submit-time stamp the queueing
    /// delay is measured from, the spec's deadline resolved to the
    /// absolute engine timeline, and the cost-model service estimate the
    /// scheduler ranks on.
    SloSpec slo;
    Cycles submitted_at = 0;
    Cycles deadline_at = kNoDeadline;
    Cycles estimated_cost = 0;
    /// Timeline at the request's last completed work (its prefill
    /// chunks, then each decode phase end); finished_at is stamped from
    /// it so a request that merely commits its final token is not
    /// charged the rest of the step.
    Cycles work_done_at = 0;
    /// Preemption state: a deep copy of the request's KV set taken at
    /// eviction (functional state; the generation bookkeeping —
    /// tokens, pos, next — stays in this struct), the filled bytes the
    /// checkpoint and its resume each move over the L3 port, and how
    /// many times the request has been evicted so far. Empty on the
    /// non-preempted path.
    std::optional<model::KvCachePool::CacheSet> checkpoint;
    Bytes checkpoint_bytes = 0;
    int times_evicted = 0;
    /// Paged-mode state: the request's page table (physical page
    /// indices in token order — adopted shared-prefix pages first, then
    /// its private pages), how many of the leading entries are adopted
    /// shared pages, and — across an eviction — how many leading token
    /// positions stayed resident in shared pages (their KV is not in
    /// the checkpoint; resume re-references or re-fetches them).
    std::vector<int> pages;
    int shared_pages = 0;
    int shared_resident_tokens = 0;
    /// True once the request's first own work was attributed (refines
    /// admitted_at exactly once even when an adopted prefix makes its
    /// first chunk start past prefill_pos 0).
    bool started = false;

    [[nodiscard]] bool prefill_done() const {
      return prefill_pos >= static_cast<int>(prompt.size());
    }
  };

  /// Per-chunk-index cost decomposition (all layers), derived from
  /// chunk-shaped block reports with the attention span of that chunk's
  /// end position.
  struct ChunkCost {
    Cycles compute = 0;  // block cycles minus the chunk's own L3 stream
    Cycles stream = 0;   // the chunk's dma_l3_l2 share (port occupancy)
    double energy_mj = 0.0;
    Bytes l3_bytes = 0;  // real traffic, for trace fidelity
  };

  /// One deployed model's serving state: its session, its block-program
  /// cost decomposition, its KvCachePool, and its staged-weights
  /// prefetch channel. Index in tenants_ == ModelId == SlotArena tenant
  /// tag == pipeline channel.
  struct Tenant {
    const InferenceSession* session = nullptr;
    /// Keeps a registry-owned session alive for the engine's lifetime
    /// (registries are routinely temporaries once add(DeploymentSpec)
    /// owns the sessions); null for legacy caller-owned sessions.
    std::shared_ptr<const InferenceSession> owned_session;
    std::string name;
    /// Bits one stored KV entry costs in the arena (the session's packed
    /// layout; equals the platform-native width for KvLayout::native).
    int kv_elem_bits = 0;
    int chunk_tokens = 0;
    std::vector<ChunkCost> chunk_costs;

    // Cost decomposition derived from the block reports.
    Cycles prompt_cycles = 0;      // full prefill cost, all layers
    double prompt_energy_mj = 0.0;
    Cycles prompt_stream_cycles = 0;  // prefill's own L3 port occupancy
    Cycles ar_shared_cycles = 0;   // weight streaming, shared across the batch
    double ar_shared_energy_mj = 0.0;
    Cycles ar_per_req_cycles = 0;  // compute + tile DMA + C2C, per request
    double ar_per_req_energy_mj = 0.0;
    Bytes stream_bytes_per_step = 0;  // real L3 bytes, for trace fidelity

    /// Memory plans backing this tenant's L2 fit checks (prompt or
    /// chunked-prompt shape, plus autoregressive), kept so the engine
    /// can re-validate the fit against the WHOLE shared arena once all
    /// tenants are sized (a tenant must hold its working set next to
    /// every other model's resident KV, not just its own).
    struct FitPlan {
      const char* mode = "";
      partition::MemoryPlan plan;
    };
    std::vector<FitPlan> fit_plans;
    /// Per-chip KV footprint of one of this model's sets (the memory
    /// planner's worst-case-chip `kv_cache_bytes`, autoregressive
    /// mode) — the unit of the cross-tenant L2 fit check.
    Bytes chip_kv_bytes = 0;

    /// Physical cache sets (functional state) — strictly this model's;
    /// the shared budget lives in the engine's SlotArena. Optional only
    /// because pools are built after the L2 fit check.
    std::optional<model::KvCachePool> pool;
    Bytes kv_set_bytes = 0;  // one pooled set at full capacity
    int quota = 0;  // static-split reserve (slots; pages when paged)
    int cap = 0;    // hard ceiling on concurrent slots (== pool size)

    /// Paged mode only (all zero in slot mode): effective page size in
    /// token positions (kv_page_tokens clamped to ar_context), the
    /// arena-charged bytes of one page (kv_set_bytes scaled by
    /// page_tokens/ar_context — exact, the set capacity is a multiple of
    /// the context), and the worst-case-chip L2 footprint of one page
    /// (the unit of the cross-tenant fit check).
    int page_tokens = 0;
    Bytes page_bytes = 0;
    Bytes chip_page_bytes = 0;

    /// One registered shareable prompt prefix: its token string, the
    /// read-only physical pages holding its KV (each add_ref'd by the
    /// registry itself, so they stay resident while registered), a deep
    /// copy of the donor's KV rows for the functional fork, and an LRU
    /// stamp from the engine's monotone prefix clock.
    struct PrefixEntry {
      std::vector<int> tokens;
      std::vector<int> pages;
      model::KvCachePool::CacheSet kv;
      std::uint64_t last_use = 0;
    };
    /// Registered prefixes of this tenant (prefix_sharing only), bounded
    /// at kPrefixCacheCap entries, tenant-LRU evicted on overflow.
    std::vector<PrefixEntry> prefix_cache;

    /// The in-flight stream DMA this model's next decode step will
    /// consume; traced at consumption time so speculative fetches never
    /// appear. Zero-width before its first decode step (weights staged).
    Cycles pending_fetch_start = 0;
    Cycles pending_fetch_ready = 0;
    /// Worst-case stall the pending fetch can inflict on its consuming
    /// step, recorded at issue: its port completion past the issuing
    /// step's end (genuine FIFO queueing behind other tenants' traffic
    /// plus the uncovered part of this model's own stream). Opaque port
    /// spans (KV checkpoints) push in-flight fetches and engine time in
    /// lockstep, so the margin never grows after issue.
    Cycles pending_fetch_margin = 0;
  };

  /// Per-tenant bound on registered prompt prefixes; beyond it the
  /// tenant-LRU entry is dropped at donation time.
  static constexpr int kPrefixCacheCap = 8;

  [[nodiscard]] static Tenant build_tenant(const ModelDeployment& dep,
                                           int quota, int cap,
                                           int page_tokens);

  /// Admit pending requests into free slots under the budget policy;
  /// serial-prefill models charge their whole prompt here.
  /// `serial_admitted[m]` is set when model m admitted serial prompt
  /// work this step.
  void admit_pending(int step_idx, double& step_energy,
                     std::vector<char>& serial_admitted);
  /// Index into pending_ of the scheduler's choice among budget-
  /// admissible requests, or -1 when nothing may be admitted.
  [[nodiscard]] int pick_admissible_pending() const;
  /// Budget-policy snapshot of every tenant's occupancy and queued
  /// demand (shared by admission, preemption, and shedding decisions).
  [[nodiscard]] std::vector<KvBudgetPolicy::TenantView> budget_views() const;
  /// Whether the budget would grant `p` a slot right now, given the
  /// snapshot (false when no slot is free or p's model is at cap).
  [[nodiscard]] bool admissible_now(
      const Inflight& p, const std::vector<KvBudgetPolicy::TenantView>& views,
      int free_slots) const;
  /// Whether evicting `victim` would let the budget admit `starved`
  /// (simulates the post-eviction snapshot; cross-model reclaim of a
  /// watermark-borrowed slot included).
  [[nodiscard]] bool admits_after_evicting(const Inflight& starved,
                                           const Inflight& victim) const;

  // ---- mode dispatch over the two budget arenas -----------------------
  /// Free budget units (slots or pages) in whichever arena is live.
  [[nodiscard]] int kv_free() const;
  /// Total budget units of the live arena.
  [[nodiscard]] int kv_capacity_units() const;
  /// Units tenant `m` currently holds / ever held at once / reclaimed.
  [[nodiscard]] int kv_tenant_in_use(ModelId m) const;
  [[nodiscard]] int kv_tenant_high_water(ModelId m) const;
  [[nodiscard]] int kv_tenant_reclaimed(ModelId m) const;

  // ---- paged-mode machinery -------------------------------------------
  /// Pages `n` token positions occupy for model `m` (ceil division).
  [[nodiscard]] int pages_for_tokens(ModelId m, int n) const;
  /// KV rows request `r` will have resident by the end of the step now
  /// being planned — the page requirement admission and growth must
  /// cover before running it. Counts the same-step first-decode row
  /// exactly when the engine's commit loop appends it (new_tokens >= 2).
  [[nodiscard]] int tokens_after_step(const Inflight& r) const;
  /// Admission plan of one pending request under paging: total pages its
  /// first step needs, how many of them an adoptable registered prefix
  /// (or, on resume, still-resident shared pages) provides, which
  /// registry entry that is (-1 none), and the prompt tokens adoption
  /// skips recomputing.
  struct PagedAdmitPlan {
    int need_pages = 0;
    int shared_pages = 0;
    int entry = -1;
    int shared_tokens = 0;
  };
  [[nodiscard]] PagedAdmitPlan plan_paged_admission(const Inflight& p) const;
  /// Whether the budget policy would grant tenant `m` `n` more pages in
  /// sequence from the snapshot (each grant re-asks the policy with the
  /// occupancy advanced, mirroring how admission actually acquires).
  [[nodiscard]] bool can_grant_pages(
      ModelId m, std::vector<KvBudgetPolicy::TenantView> views,
      int free_pages, int n) const;
  /// Acquire one budget page for tenant `m`, dropping LRU prefix-cache
  /// entries (their pages are the only reclaimable occupancy) until the
  /// policy grants or nothing is left to drop.
  [[nodiscard]] std::optional<int> acquire_page_for(ModelId m);
  /// Decode-time page growth, run between preemption and admission: give
  /// every active request the pages this step's new KV rows need; a
  /// request that cannot be grown is evicted (checkpointed to resume
  /// later) rather than served out of budget.
  void grow_active_paged(int step_idx, double& step_energy);
  /// Drop the least-recently-used prefix-cache entry (of tenant `only`,
  /// or across all tenants when -1), releasing its page references;
  /// false when no matching entry is registered.
  bool drop_lru_prefix_entry(ModelId only = -1);
  /// Register a just-prefilled prompt as a shareable prefix (chunked
  /// paged tenants with prefix_sharing): add_ref its full pages and deep-
  /// copy its KV rows into the tenant's registry.
  void donate_prefix(const Inflight& r);
  /// Longest-common-prefix length of two token strings.
  [[nodiscard]] static int common_prefix(const std::vector<int>& a,
                                         const std::vector<int>& b);
  /// Cost-model estimate of a request's service demand still ahead of
  /// it (remaining prefill chunks plus remaining decode forwards).
  [[nodiscard]] Cycles remaining_cost(const Inflight& r) const;
  /// Preemption driver, run at the top of each step: while a pending
  /// feasible deadline would be starved past its deadline by waiting
  /// for the earliest natural slot release, offer the policy the
  /// running requests whose eviction would unblock it (bounded by the
  /// step's initial batch size).
  void maybe_preempt(int step_idx, double& step_energy);
  /// One trigger evaluation + eviction; true when a victim was evicted.
  bool attempt_preemption(int step_idx, double& step_energy);
  /// Checkpoint active_[idx] out of its KV slot: deep-copy its KV set,
  /// charge the checkpoint traffic to it on the L3 port, reclaim its
  /// tenant-tagged slot, and push it back to pending_ to resume later.
  void evict_active(std::size_t idx, int step_idx, double& step_energy);
  /// Fair load shedding on a full queue: drop the newest non-
  /// checkpointed queued request of the heaviest tenant (counting the
  /// incoming request toward `incoming`'s tenant). False — and no
  /// shed — when incoming's own tenant is among the heaviest.
  bool shed_for_model(ModelId incoming);
  /// Trace lane (pid) for scheduler-category spans: the owning model in
  /// multi-model traces, chip 0 in single-model traces (bit-exact with
  /// the historical single-model layout).
  [[nodiscard]] int sched_chip(ModelId m) const {
    return trace_models_ ? static_cast<int>(m) : 0;
  }
  /// One model's slice of the step: chunk runs, token commits, decode
  /// forwards, and its advance on the shared pipeline (its own channel).
  void run_subphase(ModelId m, int step_idx, double& step_energy,
                    bool& step_prefill, bool& step_decode);
  void subphase_serial(ModelId m, int step_idx, double& step_energy,
                       bool& step_decode);
  void subphase_chunked(ModelId m, int step_idx, double& step_energy,
                        bool& step_prefill, bool& step_decode);
  /// Exact attribution of one model's decode phase, shared by both
  /// sub-phase modes: per-request compute at its serialized slot,
  /// integer stall shares in the wait window (remainder to the earliest
  /// admitted), token commits at the phase boundary, and the model's
  /// stall/hidden conservation counters. Pre: `decoders` is non-empty
  /// and `sp` consumed the model's staged weights.
  /// `stall_bound` is the consumed fetch's issue-time margin (worst
  /// case stall, see Tenant::pending_fetch_margin), captured before the
  /// pending-fetch fields were overwritten by this step's own issue.
  void charge_decode_phase(ModelId m, const std::vector<std::size_t>& decoders,
                           const PrefetchPipeline::StepSpan& sp,
                           Cycles stall_bound, double& step_energy,
                           bool& step_decode);
  /// Cost-model service estimate for the scheduler: prefill charge
  /// (chunk decomposition when chunking is on) plus new_tokens decode
  /// forwards, excluding batch-shared streaming and queueing.
  [[nodiscard]] Cycles estimate_request_cost(const Tenant& t,
                                             int prompt_tokens,
                                             int new_tokens) const;
  /// Trace the admission decision on the request's lane: its queue wait
  /// as a sched-category span ending at the (final) admitted_at stamp.
  void trace_admission(const Inflight& r);
  void finish(Inflight& r, int step_idx);
  /// Charge `cycles`/`energy` to a request (and its model's attribution
  /// counters) and, when tracing, lay a tagged span at
  /// [begin, begin + cycles] on the engine timeline — spans of different
  /// requests get their own trace lanes and may overlap within a step.
  /// `chip` is the trace pid (sched-category spans route through
  /// sched_chip; everything else stays on chip 0).
  void charge(Inflight& r, Cycles cycles, double energy_mj, sim::Category cat,
              const char* label, Cycles begin, int chip = 0);
  /// Embed `toks` and run them through every layer of the request's
  /// model against the request's KV set, `pos_offset` being the absolute
  /// position of the first row — the one functional forward path shared
  /// by prefills (whole prompts and chunks) and decode steps.
  [[nodiscard]] model::Tensor forward_tokens(const Inflight& r,
                                             const std::vector<int>& toks,
                                             int pos_offset);
  /// Run one prompt chunk functionally (embeds, all layers, KV append);
  /// returns the chunk index it advanced through and sets `next` when
  /// the prompt completes.
  int run_prefill_chunk(Inflight& r);

  [[nodiscard]] const Tenant& tenant(ModelId m) const;

  /// Effective engine-level options (keeps the policy shared_ptrs
  /// alive for the engine's lifetime).
  MultiOptions opts_;
  sim::Tracer* tracer_;

  std::vector<Tenant> tenants_;
  /// True once more than one model is deployed: charges additionally
  /// tag the tracer with the owning model so traces grow per-model
  /// request lanes (single-model traces are unchanged).
  bool trace_models_ = false;

  /// Shared KV budget: uniform slabs sized for the largest tenant's
  /// set (largest page in paged mode), charged to one arena. Exactly one
  /// of the two budget arenas is live: whole-request slots (the
  /// historical engine) or refcounted pages (kv_page_tokens > 0).
  Bytes slab_bytes_ = 0;
  mem::Arena kv_arena_;
  std::optional<mem::SlotArena> kv_slots_;
  std::optional<mem::PagedKvArena> kv_pages_;

  /// Effective admission/budget policies: the configured ones, or the
  /// process-wide FIFO / static-split instances.
  const Scheduler* scheduler_ = nullptr;
  const KvBudgetPolicy* budget_ = nullptr;

  std::deque<Inflight> pending_;
  std::vector<Inflight> active_;
  std::vector<RequestResult> finished_;
  ServingStats stats_;
  /// Queueing delays of finished requests: a bounded reservoir (exact
  /// below its capacity, uniform sample beyond) so the percentile
  /// snapshot in ServingStats refreshes at every completion in O(cap)
  /// with O(1) memory regardless of how many requests the engine serves.
  util::QuantileReservoir queue_delays_;
  RequestId next_id_ = 0;
  /// Monotone LRU clock for the prefix registry (engine steps are the
  /// only time source; no wall clock).
  std::uint64_t prefix_clock_ = 0;
  /// Outcome of the most recent submit(), for clients distinguishing
  /// backpressure from fail-fast refusal.
  Rejection last_rejection_ = Rejection::none;
  /// Requests dropped by fair load shedding, in shed order.
  std::vector<RequestId> shed_ids_;

  /// Step timeline: every model's decode compute races its next weight
  /// stream on its own staged channel; all DMAs serialize on the one
  /// FIFO L3 port. The port is normalized (1 byte == 1 cycle of the
  /// measured serial stream, no extra setup) because the block reports
  /// already include the per-tile DMA setup costs the timed simulation
  /// charged.
  PrefetchPipeline pipeline_;
};

}  // namespace distmcu::runtime

#endif  // DISTMCU_RUNTIME_BATCHED_ENGINE_HPP
