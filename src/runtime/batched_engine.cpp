#include "runtime/batched_engine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace distmcu::runtime {

namespace {

/// Re-check one mode's memory plan with max_batch KV sets resident: the
/// memory planner validated a single request's KV against the
/// worst-case chip's L2, so scale its KV term by max_batch.
void check_pool_fits(const partition::MemoryPlan& mp, int max_batch,
                     const char* mode) {
  const Bytes extra_kv = mp.kv_cache_bytes * static_cast<Bytes>(max_batch - 1);
  util::check_plan(
      mp.need() + extra_kv <= mp.l2_usable,
      "BatchedEngine: " + std::to_string(max_batch) +
          " pooled KV-cache sets need " +
          util::format_bytes(mp.need() + extra_kv) + " of L2 in " + mode +
          " mode but only " + util::format_bytes(mp.l2_usable) +
          " is usable; lower max_batch or ar_context");
}

/// Validate the options and the pooled-KV fit for both serving phases
/// BEFORE any cache tensors are allocated; returns max_batch so it can
/// run in the constructor's init list ahead of the pool member.
int checked_pool_slots(const BatchedEngine::Options& opts,
                       const BlockResult& prompt_block,
                       const BlockResult& ar_block) {
  util::check(opts.max_batch > 0, "BatchedEngine: max_batch must be positive");
  util::check(opts.max_pending >= 0, "BatchedEngine: max_pending must be >= 0");
  check_pool_fits(prompt_block.memory, opts.max_batch, "prompt");
  check_pool_fits(ar_block.memory, opts.max_batch, "autoregressive");
  return opts.max_batch;
}

}  // namespace

BatchedEngine::BatchedEngine(const InferenceSession& session, Options opts,
                             sim::Tracer* tracer)
    : session_(session),
      opts_(opts),
      tracer_(tracer),
      prompt_block_(session.run_block(model::Mode::prompt)),
      ar_block_(session.run_block(model::Mode::autoregressive)),
      kv_pool_(checked_pool_slots(opts, prompt_block_, ar_block_),
               [&session] {
                 return session.block_executor().make_chip_caches(
                     session.config().ar_context);
               }),
      kv_set_bytes_(
          kv_pool_.set_capacity_bytes(session.system().precision.kv_bytes)),
      // Size the arena for max_batch aligned slot reservations exactly.
      kv_arena_("l2.kv_pool",
                static_cast<Bytes>(opts.max_batch) *
                    mem::Arena::align_up(kv_set_bytes_,
                                         mem::Arena::kDefaultAlignment)),
      kv_slots_(kv_arena_, "kv_set", opts.max_batch, kv_set_bytes_) {
  const auto layers = static_cast<Cycles>(session_.config().num_layers);

  prompt_cycles_ = prompt_block_.report.block_cycles * layers;
  prompt_energy_mj_ = prompt_block_.energy_mj() * static_cast<double>(layers);
  prompt_stream_cycles_ = prompt_block_.report.breakdown.dma_l3_l2 * layers;

  // Decode-step decomposition: the L3->L2 portion is block-weight
  // streaming, fetched once per layer no matter how many requests are in
  // the batch; everything else scales with the batch.
  ar_shared_cycles_ = ar_block_.report.breakdown.dma_l3_l2 * layers;
  ar_per_req_cycles_ =
      (ar_block_.report.block_cycles - ar_block_.report.breakdown.dma_l3_l2) *
      layers;
  ar_shared_energy_mj_ =
      util::pj_to_mj(ar_block_.energy.l3) * static_cast<double>(layers);
  ar_per_req_energy_mj_ =
      util::pj_to_mj(ar_block_.energy.core + ar_block_.energy.l2 +
                     ar_block_.energy.c2c) *
      static_cast<double>(layers);
  stream_bytes_per_step_ = ar_block_.report.traffic.l3_l2 * layers;
}

std::optional<RequestId> BatchedEngine::submit(std::vector<int> prompt,
                                               int new_tokens) {
  util::check(!prompt.empty(), "submit: prompt must not be empty");
  util::check(new_tokens >= 0, "submit: new_tokens must be >= 0");
  util::check(static_cast<int>(prompt.size()) + new_tokens <=
                  session_.config().ar_context,
              "submit: sequence exceeds the model's context length");
  // Prefill cost and the construction-time L2 fit were both derived from
  // the deployment's static prompt shape, so longer prompts would be
  // silently under-charged and under-validated.
  util::check(static_cast<int>(prompt.size()) <= session_.config().prompt_len,
              "submit: prompt exceeds the deployment's prefill length (" +
                  std::to_string(session_.config().prompt_len) + ")");

  // max_pending bounds the *queue*: only the backlog beyond what the
  // free KV slots can absorb at the next admission point counts against
  // it, so an idle engine with a free slot admits even at
  // max_pending == 0.
  const int backlog = static_cast<int>(pending_.size()) - kv_slots_.free();
  if (backlog >= opts_.max_pending) {
    ++stats_.rejected;
    return std::nullopt;
  }
  Request r;
  r.id = next_id_++;
  r.prompt = std::move(prompt);
  r.new_tokens = new_tokens;
  const RequestId id = r.id;
  pending_.push_back(std::move(r));
  return id;
}

void BatchedEngine::charge(Request& r, Cycles cycles, double energy_mj,
                           sim::Category cat, const char* label, Cycles begin) {
  r.cycles += cycles;
  r.energy_mj += energy_mj;
  if (tracer_ != nullptr && cycles > 0) {
    tracer_->set_request(r.id);
    tracer_->record(0, cat, begin, begin + cycles, 0, label);
    tracer_->set_request(sim::kNoRequest);
  }
}

void BatchedEngine::finish(Request& r, int step_idx) {
  kv_slots_.release(r.slot);
  r.slot = -1;
  RequestResult out;
  out.id = r.id;
  out.admitted_step = r.admitted_step;
  out.finished_step = step_idx;
  out.admitted_at = r.admitted_at;
  // The boundary at which the final token was committed: the request's
  // own last completed work, not the end of a step other requests are
  // still filling.
  out.finished_at = r.work_done_at;
  out.gen.tokens = std::move(r.tokens);
  out.gen.generated = r.generated;
  out.gen.total_cycles = r.cycles;
  out.gen.total_energy_mj = r.energy_mj;
  finished_.push_back(std::move(out));
  ++stats_.completed;
}

void BatchedEngine::admit_pending(int step_idx, double& step_energy) {
  const auto& emb = session_.embedding();
  const auto& block = session_.block_executor();
  const int layers = session_.config().num_layers;

  while (!pending_.empty()) {
    const auto slot = kv_slots_.acquire();
    if (!slot.has_value()) break;
    Request r = std::move(pending_.front());
    pending_.pop_front();
    r.slot = *slot;
    r.admitted_step = step_idx;
    // The request's own position on the step timeline: prefills of
    // requests admitted earlier this step have already advanced the
    // pipeline, so their cycles never leak into this request's
    // residence latency.
    r.admitted_at = pipeline_.now();
    kv_pool_.reset_slot(r.slot);

    model::Tensor h = emb.lookup(r.prompt);
    for (int l = 0; l < layers; ++l) {
      h = block.forward(h, l, &kv_pool_.slot(r.slot), 0);
    }
    r.tokens = r.prompt;
    r.pos = static_cast<int>(r.prompt.size());
    charge(r, prompt_cycles_, prompt_energy_mj_, sim::Category::compute,
           "prefill", r.admitted_at);
    // Prefill advances the timeline without touching the staged decode
    // weights; an in-flight stream prefetch keeps draining underneath,
    // except while the prefill's own L3 streaming occupies the port.
    pipeline_.advance_opaque(prompt_cycles_, prompt_stream_cycles_);
    r.work_done_at = pipeline_.now();
    step_energy += prompt_energy_mj_;

    if (r.new_tokens == 0) {
      finish(r, step_idx);
    } else {
      r.next = emb.greedy_next(h);
      active_.push_back(std::move(r));
    }
  }
}

bool BatchedEngine::step() {
  if (pending_.empty() && active_.empty()) return false;
  const int step_idx = stats_.steps;
  double step_energy = 0.0;

  admit_pending(step_idx, step_energy);
  stats_.peak_batch =
      std::max(stats_.peak_batch, static_cast<int>(active_.size()));

  const auto& emb = session_.embedding();
  const auto& block = session_.block_executor();
  const int layers = session_.config().num_layers;

  // Emit one token per active request; a request that emits its final
  // token leaves without running another forward, mirroring
  // InferenceSession::generate exactly.
  std::vector<Request> still_active;
  still_active.reserve(active_.size());
  for (auto& r : active_) {
    r.tokens.push_back(r.next);
    ++r.generated;
    ++stats_.total_generated;
    if (r.generated == r.new_tokens) {
      finish(r, step_idx);
      continue;
    }
    model::Tensor x = emb.lookup({r.next});
    for (int l = 0; l < layers; ++l) {
      x = block.forward(x, l, &kv_pool_.slot(r.slot), r.pos);
    }
    r.next = emb.greedy_next(x);
    ++r.pos;
    still_active.push_back(std::move(r));
  }
  active_ = std::move(still_active);

  // Decode phase: the batch's serialized forwards race the weight stream
  // the previous decode step prefetched, and the prefetch for the NEXT
  // step is issued the moment this one starts. Only the unhidden stall
  // lands on the step; it is attributed in equal integer shares
  // (remainder cycles to the earliest admitted) so per-request cycles
  // still sum to the aggregate exactly. Streaming energy is charged in
  // full regardless of overlap — the DMA runs either way.
  if (!active_.empty()) {
    const auto b = static_cast<Cycles>(active_.size());
    const Cycles compute = b * ar_per_req_cycles_;
    // Skip the speculative fetch when this is provably the last step.
    const bool work_remains = !pending_.empty() ||
                              std::any_of(active_.begin(), active_.end(),
                                          [](const Request& r) {
                                            return r.generated + 1 < r.new_tokens;
                                          });
    const Bytes next_stream =
        work_remains ? static_cast<Bytes>(ar_shared_cycles_) : Bytes{0};
    const auto span = pipeline_.advance(compute, next_stream);

    // Trace the stream DMA this step consumed (issued during an earlier
    // step, so it overlaps whatever ran since) and remember the one just
    // issued for the step that will consume it.
    if (tracer_ != nullptr && pending_fetch_ready_ > pending_fetch_issue_) {
      tracer_->record(0, sim::Category::dma_l3_l2, pending_fetch_issue_,
                      pending_fetch_ready_, stream_bytes_per_step_,
                      "weights.prefetch");
    }
    pending_fetch_issue_ = span.fetch_issue;
    pending_fetch_ready_ = span.fetch_ready;

    // Per-request decode compute at its serialized slot on the step
    // timeline; the stall shares all sit in the wait window at the
    // start of the phase, overlapping across the requests' trace lanes.
    const Cycles share = span.stall / b;
    const Cycles rem = span.stall % b;
    const double e_share =
        ar_shared_energy_mj_ / static_cast<double>(active_.size());
    for (std::size_t i = 0; i < active_.size(); ++i) {
      charge(active_[i], ar_per_req_cycles_, ar_per_req_energy_mj_,
             sim::Category::compute, "decode",
             span.start + static_cast<Cycles>(i) * ar_per_req_cycles_);
      const Cycles c = share + (static_cast<Cycles>(i) < rem ? 1 : 0);
      charge(active_[i], c, e_share, sim::Category::dma_l3_l2,
             "weights.stall", span.begin);
      // Tokens commit at phase boundaries: every participant's work
      // extends to the phase end, whichever serialized slot it ran in.
      active_[i].work_done_at = span.end;
    }
    step_energy += static_cast<double>(b) * ar_per_req_energy_mj_ +
                   ar_shared_energy_mj_;
    ++stats_.decode_steps;
    stats_.prefetch_stall_cycles += span.stall;
    stats_.stream_cycles_hidden += ar_shared_cycles_ - span.stall;
  }

  stats_.total_cycles = pipeline_.now();
  stats_.total_energy_mj += step_energy;
  ++stats_.steps;
  return !(pending_.empty() && active_.empty());
}

std::vector<RequestResult> BatchedEngine::run_to_completion() {
  while (step()) {
  }
  return finished_;
}

}  // namespace distmcu::runtime
