#include "quant/quantized_ffn.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "kernels/ops.hpp"
#include "noc/collectives.hpp"
#include "quant/int_kernels.hpp"
#include "util/check.hpp"

namespace distmcu::quant {

QuantizedDistributedFfn::QuantizedDistributedFfn(const model::TransformerConfig& cfg,
                                                 const partition::ShardedWeights& shards,
                                                 const partition::PartitionPlan& plan,
                                                 const noc::Topology& topo)
    : cfg_(cfg), plan_(plan), topo_(topo) {
  DISTMCU_CHECK(cfg.ffn == model::FfnKind::mlp,
              "QuantizedDistributedFfn: only the plain MLP FFN is supported");
  DISTMCU_CHECK(topo.num_chips() == plan.num_chips(),
              "QuantizedDistributedFfn: topology/plan mismatch");

  // Quantization is per TENSOR, computed before sharding (exactly what a
  // static Deeploy calibration does): all shards of W1 share one scale
  // and all shards of W2 share another. Shared scales are what make the
  // int32 partial sums commensurable on the reduce tree AND make the
  // result bit-identical for every chip count (the products are the
  // same; only the summation order differs, and int32 addition is
  // order-invariant).
  float w1_absmax = 0.0f;
  float w2_absmax = 0.0f;
  for (int c = 0; c < plan.num_chips(); ++c) {
    for (const float v : shards.shard(c, 0).w1.span()) {
      w1_absmax = std::max(w1_absmax, std::fabs(v));
    }
    for (const float v : shards.shard(c, 0).w2.span()) {
      w2_absmax = std::max(w2_absmax, std::fabs(v));
    }
  }
  const QuantParams w1_shared = QuantParams::from_absmax(w1_absmax, 8);
  w2_shared_params_ = QuantParams::from_absmax(w2_absmax, 8);

  chips_.reserve(static_cast<std::size_t>(plan.num_chips()));
  for (int c = 0; c < plan.num_chips(); ++c) {
    const partition::WeightShard& s = shards.shard(c, 0);
    ChipShard chip;
    chip.fw = s.w1.cols();
    chip.w1_params = w1_shared;
    chip.w2_params = w2_shared_params_;
    chip.w1 = quantize_i8(s.w1.span(), chip.w1_params);
    chip.w2 = quantize_i8(s.w2.span(), chip.w2_params);
    chips_.push_back(std::move(chip));
  }
}

std::vector<std::int32_t> QuantizedDistributedFfn::forward_raw(const model::Tensor& x,
                                                               float* out_scale) const {
  DISTMCU_CHECK(x.cols() == cfg_.embed_dim, "QuantizedDistributedFfn: input width != E");
  const int s = x.rows();
  const int e = cfg_.embed_dim;
  const int n = plan_.num_chips();

  // Dynamic per-invocation activation scales: x is broadcast, so every
  // chip derives the SAME scale — no extra synchronization needed.
  const QuantParams x_params = choose_params(x.span(), 8);
  const auto xq = quantize_i8(x.span(), x_params);

  // The second GEMM's input (requantized hidden) also needs one shared
  // scale across chips so partials are commensurable. Use a bound
  // derived from broadcast-known quantities only: |hidden| <= |x|max *
  // |w1|max_global * E (loose but chip-local to compute).
  float w1_absmax_global = 0.0f;
  for (const auto& chip : chips_) {
    w1_absmax_global =
        std::max(w1_absmax_global, chip.w1_params.scale * 127.0f);
  }
  const float x_absmax = x_params.scale * 127.0f;
  const float hidden_bound =
      x_absmax * w1_absmax_global * static_cast<float>(e);
  const QuantParams h_params = QuantParams::from_absmax(hidden_bound, 8);

  std::vector<std::vector<std::int32_t>> partials(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    const ChipShard& chip = chips_[static_cast<std::size_t>(c)];
    const int fw = chip.fw;
    // --- int8 GEMM 1: [s, e] x [e, fw] -> int32 -------------------------
    std::vector<std::int32_t> acc1(static_cast<std::size_t>(s) *
                                   static_cast<std::size_t>(fw));
    gemm_i8_i32(xq, chip.w1, acc1, s, fw, e);
    // --- dequant -> activation -> requant to the shared hidden scale ---
    std::vector<float> hidden(acc1.size());
    const float deq1 = x_params.scale * chip.w1_params.scale;
    for (std::size_t i = 0; i < acc1.size(); ++i) {
      hidden[i] = static_cast<float>(acc1[i]) * deq1;
    }
    switch (cfg_.act) {
      case model::Activation::gelu: kernels::gelu(hidden); break;
      case model::Activation::silu: kernels::silu(hidden); break;
      case model::Activation::relu: kernels::relu(hidden); break;
    }
    const auto hq = quantize_i8(hidden, h_params);
    // --- int8 GEMM 2: [s, fw] x [fw, e] -> int32 partial ----------------
    std::vector<std::int32_t> acc2(static_cast<std::size_t>(s) *
                                   static_cast<std::size_t>(e));
    gemm_i8_i32(hq, chip.w2, acc2, s, e, fw);
    partials[static_cast<std::size_t>(c)] = std::move(acc2);
  }

  // --- int32 all-reduce: bit-exact for any tree shape -------------------
  std::vector<std::span<std::int32_t>> views;
  views.reserve(partials.size());
  for (auto& p : partials) views.emplace_back(p);
  noc::reduce_numeric(topo_, views);

  if (out_scale != nullptr) {
    *out_scale = h_params.scale * w2_shared_params_.scale;
  }
  return partials[static_cast<std::size_t>(topo_.root())];
}

model::Tensor QuantizedDistributedFfn::forward(const model::Tensor& x) const {
  float scale = 1.0f;
  const auto raw = forward_raw(x, &scale);
  model::Tensor out(x.rows(), cfg_.embed_dim);
  auto span = out.span();
  for (std::size_t i = 0; i < raw.size(); ++i) {
    span[i] = static_cast<float>(raw[i]) * scale;
  }
  return out;
}

}  // namespace distmcu::quant
