#include "runtime/block_program.hpp"

#include "util/check.hpp"

namespace distmcu::runtime {

Bytes BlockProgram::chip_weight_bytes(int chip) const {
  Bytes sum = 0;
  for (const auto& op : mhsa_phase[static_cast<std::size_t>(chip)]) sum += op.weight_bytes;
  for (const auto& op : ffn_phase[static_cast<std::size_t>(chip)]) sum += op.weight_bytes;
  return sum;
}

Bytes BlockProgram::chip_kv_bytes(int chip) const {
  Bytes sum = 0;
  for (const auto& op : mhsa_phase[static_cast<std::size_t>(chip)]) sum += op.kv_bytes;
  for (const auto& op : ffn_phase[static_cast<std::size_t>(chip)]) sum += op.kv_bytes;
  return sum;
}

std::size_t BlockProgram::chip_num_ops(int chip) const {
  return mhsa_phase[static_cast<std::size_t>(chip)].size() +
         ffn_phase[static_cast<std::size_t>(chip)].size();
}

BlockProgram build_block_program(const partition::PartitionPlan& plan,
                                 const partition::PrecisionConfig& precision,
                                 model::Mode mode, int attention_span_override) {
  const model::TransformerConfig& cfg = plan.config();
  BlockProgram prog;
  prog.mode = mode;
  prog.seq_len = mode == model::Mode::prompt ? cfg.prompt_len : 1;
  const bool causal = cfg.mask == model::MaskKind::causal;
  prog.attention_span =
      causal ? (mode == model::Mode::prompt ? cfg.prompt_len : cfg.ar_context)
             : prog.seq_len;
  if (attention_span_override > 0) {
    DISTMCU_CHECK(attention_span_override >= prog.seq_len,
                "build_block_program: attention span must cover the rows "
                "being processed");
    prog.attention_span = attention_span_override;
  }

  const auto e = static_cast<std::int64_t>(cfg.embed_dim);
  const auto s = static_cast<std::int64_t>(prog.seq_len);
  const auto t = static_cast<std::int64_t>(prog.attention_span);
  const auto p = static_cast<std::int64_t>(cfg.head_dim);
  const Bytes wb = precision.weight_bytes;
  const Bytes kvb = precision.kv_bytes;

  prog.sync_payload_bytes =
      static_cast<Bytes>(s) * static_cast<Bytes>(e) * precision.act_bytes;

  prog.mhsa_phase.resize(static_cast<std::size_t>(plan.num_chips()));
  prog.ffn_phase.resize(static_cast<std::size_t>(plan.num_chips()));

  for (int c = 0; c < plan.num_chips(); ++c) {
    const partition::ChipSlice& slice = plan.slice(c);
    const auto pw = static_cast<std::int64_t>(plan.proj_width(c));
    const auto fw = static_cast<std::int64_t>(slice.f_width());
    auto& mhsa = prog.mhsa_phase[static_cast<std::size_t>(c)];
    auto& ffn = prog.ffn_phase[static_cast<std::size_t>(c)];

    // --- MHSA: projections for the owned heads ------------------------
    const Bytes proj_w = static_cast<Bytes>(e * pw) * wb;
    mhsa.push_back({OpKind::gemm, s, pw, e, proj_w, 0, "q_proj"});
    mhsa.push_back({OpKind::gemm, s, pw, e, proj_w, 0, "k_proj"});
    mhsa.push_back({OpKind::gemm, s, pw, e, proj_w, 0, "v_proj"});
    if (cfg.pos == model::PosEmbed::rope) {
      mhsa.push_back({OpKind::rope, s, pw, 1, 0, 0, "rope_q"});
      mhsa.push_back({OpKind::rope, s, pw, 1, 0, 0, "rope_k"});
    }
    // --- attention, one kernel triple per owned head ------------------
    // Per-head kernels are what Deeploy emits; their per-launch overhead
    // is the source of the sub-linear kernel scaling the paper reports
    // when slices shrink.
    const Bytes head_kv = static_cast<Bytes>(t * p) * kvb;
    for (int h = 0; h < slice.num_heads(); ++h) {
      const std::string hs = "h" + std::to_string(slice.head_begin + h);
      mhsa.push_back({OpKind::gemm, s, t, p, 0, head_kv, "scores_" + hs});
      mhsa.push_back({OpKind::softmax, s, t, 1, 0, 0, "softmax_" + hs});
      mhsa.push_back({OpKind::gemm, s, p, t, 0, head_kv, "context_" + hs});
    }
    // --- output projection: the chip's rows of WO ----------------------
    mhsa.push_back(
        {OpKind::gemm, s, e, pw, static_cast<Bytes>(pw * e) * wb, 0, "out_proj"});

    // --- FFN: the chip's slice of F ------------------------------------
    ffn.push_back({OpKind::gemm, s, fw, e, static_cast<Bytes>(e * fw) * wb, 0, "ffn_w1"});
    ffn.push_back({OpKind::elementwise, 1, s * fw, 1, 0, 0, "ffn_act"});
    if (cfg.ffn == model::FfnKind::swiglu) {
      ffn.push_back(
          {OpKind::gemm, s, fw, e, static_cast<Bytes>(e * fw) * wb, 0, "ffn_w3"});
      ffn.push_back({OpKind::elementwise, 1, s * fw, 1, 0, 0, "ffn_gate_mul"});
    }
    ffn.push_back({OpKind::gemm, s, e, fw, static_cast<Bytes>(fw * e) * wb, 0, "ffn_w2"});
  }

  // --- root work between reduce and broadcast -------------------------
  // Skip-connection merge (folded into the reduction) plus the
  // normalization the paper performs on a single chip.
  prog.root_mid.push_back({OpKind::elementwise, 1, s * e, 1, 0, 0, "skip_add_1"});
  prog.root_mid.push_back({OpKind::norm, s, e, 1, 0, 0, "norm_1"});
  prog.root_end.push_back({OpKind::elementwise, 1, s * e, 1, 0, 0, "skip_add_2"});
  prog.root_end.push_back({OpKind::norm, s, e, 1, 0, 0, "norm_2"});

  // Cross-check against the planner's shard accounting.
  for (int c = 0; c < plan.num_chips(); ++c) {
    DISTMCU_CHECK(prog.chip_weight_bytes(c) == plan.chip_block_weight_elems(c) * wb,
                "build_block_program: op weight bytes disagree with plan shard");
  }
  return prog;
}

}  // namespace distmcu::runtime
