#ifndef DISTMCU_RUNTIME_BLOCK_PROGRAM_HPP
#define DISTMCU_RUNTIME_BLOCK_PROGRAM_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "model/config.hpp"
#include "partition/memory_planner.hpp"
#include "partition/plan.hpp"
#include "util/units.hpp"

namespace distmcu::runtime {

/// Kernel categories the timed simulation knows how to cost. One op is
/// one Deeploy-style kernel launch on a chip's cluster.
enum class OpKind {
  gemm,          // m x k times k x n (GEMV when m == 1)
  softmax,       // rows m, cols n
  norm,          // rows m, cols n (RMSNorm/LayerNorm)
  elementwise,   // n elements (activation, residual add)
  rope,          // rows m, width n
};

/// One kernel launch with everything the timing model needs: logical
/// dimensions, the stationary-operand bytes that stream L2->L1 (and
/// L3->L2 in the streamed regime), and the KV-cache bytes read.
struct KernelOp {
  OpKind kind = OpKind::gemm;
  std::int64_t m = 1;
  std::int64_t n = 1;
  std::int64_t k = 1;
  Bytes weight_bytes = 0;
  Bytes kv_bytes = 0;
  std::string label;
};

/// The per-chip op lists of one Transformer block under the partition —
/// the deployment IR shared between documentation, the timed simulation,
/// and the cross-checks against the functional executor. Structure
/// mirrors the paper's Fig. 3: a parallel MHSA phase, sync 1 (reduce +
/// root norm + broadcast), a parallel FFN phase, sync 2.
struct BlockProgram {
  model::Mode mode = model::Mode::autoregressive;
  int seq_len = 1;          // S: rows processed by this block
  int attention_span = 1;   // T: KV positions attended

  std::vector<std::vector<KernelOp>> mhsa_phase;  // [chip] -> ops
  std::vector<KernelOp> root_mid;                 // skip-add + norm on the root
  std::vector<std::vector<KernelOp>> ffn_phase;   // [chip] -> ops
  std::vector<KernelOp> root_end;

  /// Bytes of one all-reduce payload (the [S, E] partial output).
  Bytes sync_payload_bytes = 0;

  [[nodiscard]] int num_chips() const { return static_cast<int>(mhsa_phase.size()); }

  /// Total stationary weight bytes a chip touches in one block — must
  /// equal the planner's shard size (asserted in tests).
  [[nodiscard]] Bytes chip_weight_bytes(int chip) const;

  /// Total KV bytes a chip reads in one block.
  [[nodiscard]] Bytes chip_kv_bytes(int chip) const;

  /// Number of kernel launches on one chip (drives per-launch overhead —
  /// the paper's utilization-loss effect at high chip counts).
  [[nodiscard]] std::size_t chip_num_ops(int chip) const;
};

/// Lower a partition plan to per-chip op lists for one block in `mode`.
///
/// `attention_span_override`, when positive, replaces the mode-derived
/// attention span T (the KV positions each query row's score/context
/// GEMMs run over). Chunked prefill uses it to cost a chunk of C rows
/// that attends to an already-cached prefix: seq_len stays C while the
/// span grows with the chunk's end position. Must be >= the mode's
/// seq_len; 0 keeps the default (prompt: prompt_len, decode:
/// ar_context).
[[nodiscard]] BlockProgram build_block_program(const partition::PartitionPlan& plan,
                                               const partition::PrecisionConfig& precision,
                                               model::Mode mode,
                                               int attention_span_override = 0);

}  // namespace distmcu::runtime

#endif  // DISTMCU_RUNTIME_BLOCK_PROGRAM_HPP
