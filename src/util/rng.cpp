#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace distmcu::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::uniform(float lo, float hi) {
  return lo + static_cast<float>(next_double()) * (hi - lo);
}

float Rng::normal() {
  // Box-Muller; clamp u1 away from 0 to keep log finite.
  double u1 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return static_cast<float>(r * std::cos(2.0 * std::numbers::pi * u2));
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  // Rejection-free modulo is fine here: n is always tiny (vocab, chip
  // counts) relative to 2^64, so bias is negligible for test purposes.
  return next_u64() % n;
}

}  // namespace distmcu::util
