// Serving-throughput bench: aggregate tokens/s, energy per token, and
// mean per-request latency of the batched engine at batch sizes
// B in {1, 2, 4, 8}, against the B=1 (sequential serving) baseline AND
// against the serial-charging cost model (compute + stream per step).
// Continuous batching shares each decode step's block-weight streaming
// across the batch, and the engine overlaps the next step's weight
// prefetch with the batch's compute, so a step costs
// max(compute, stream) — prefetch_stall_cycles is the remainder the
// batch could not hide and shrinks to zero as B grows.
//
// The second table sweeps the chunked-prefill step model on the same
// default workload: prompts split into fixed-size chunks, co-scheduled
// with decodes, the chunks' own weight streaming racing the step's
// compute on the shared L3 port. prompt_mcyc — what the engine actually
// charges for the prompt phase — must drop strictly below the serial
// model's (chunk 0) charge once chunking is on.
#include <iostream>
#include <vector>

#include "runtime/batched_engine.hpp"
#include "runtime/inference_session.hpp"
#include "util/table.hpp"

using namespace distmcu;

namespace {

/// Full-width TinyLlama blocks with the layer count and vocabulary cut
/// so the functional numerics stay quick. At 4 chips this deployment
/// streams block weights from L3 on every decode step — the regime
/// where continuous batching buys throughput.
model::TransformerConfig bench_model() {
  auto cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.num_layers = 4;
  cfg.vocab_size = 512;
  cfg.ar_context = 64;
  cfg.prompt_len = 8;
  cfg.validate();
  return cfg;
}

}  // namespace

int main() {
  const auto cfg = bench_model();
  const int n_chips = 4;
  const int decode_tokens = 12;
  const double freq_hz = 500e6;
  const runtime::InferenceSession session(cfg, n_chips);

  std::cout << "Batched serving throughput — " << cfg.name << " on " << n_chips
            << " chips, " << decode_tokens << " decode tokens per request\n\n";

  util::Table table({"batch", "requests", "steps", "agg_tok_per_s",
                     "speedup_vs_b1", "overlap_gain", "stall_mcyc",
                     "mean_req_latency_ms", "mj_per_token"});
  double base_tok_s = 0.0;
  for (const int batch : {1, 2, 4, 8}) {
    runtime::BatchedEngine engine(session,
                                  {.max_batch = batch, .max_pending = 64});
    for (int i = 0; i < batch; ++i) {
      // Distinct prompts so the streams differ per request.
      (void)*engine.submit({1 + i, 7 + i, 3}, decode_tokens);
    }
    const auto results = engine.run_to_completion();

    double latency_ms_sum = 0.0;
    for (const auto& r : results) {
      // Residence time in the batch — grows with contention, unlike the
      // attributed cost share in r.gen.
      latency_ms_sum += util::cycles_to_ms(r.latency_cycles(), freq_hz);
    }
    const auto& stats = engine.stats();
    const double tok_s = stats.aggregate_tokens_per_s(freq_hz);
    if (base_tok_s == 0.0) base_tok_s = tok_s;
    // What the serial-charging model (compute + stream per step) would
    // have reported: the overlap's win is the hidden stream time.
    const Cycles serial_cycles = stats.total_cycles + stats.stream_cycles_hidden;
    const double overlap_gain = static_cast<double>(serial_cycles) /
                                static_cast<double>(stats.total_cycles);

    table.row()
        .add(batch)
        .add(static_cast<int>(results.size()))
        .add(stats.steps)
        .add(tok_s, 1)
        .add(tok_s / base_tok_s, 2)
        .add(overlap_gain, 3)
        .add(static_cast<double>(stats.prefetch_stall_cycles) / 1e6, 2)
        .add(latency_ms_sum / static_cast<double>(results.size()), 3)
        .add(stats.mj_per_token(), 4);
  }
  table.print(std::cout);
  std::cout << "\nstall_mcyc is nonzero only while the batch's compute cannot\n"
               "cover the shared weight stream; overlap_gain compares against\n"
               "the serial-charging model (compute + stream per step).\n";

  // --- chunked prefill sweep --------------------------------------------
  // Continuous arrivals (more requests than KV slots, half-length
  // prompts) so prompt chunks genuinely co-schedule with decode steps.
  std::cout << "\nChunked prefill — " << 2 * 4
            << " requests of 4-token prompts through 4 KV slots, chunk "
               "size swept (0 = serial prefill model):\n\n";
  util::Table chunk_table({"chunk", "steps", "prefill_steps", "prompt_mcyc",
                           "prompt_gain", "hidden_mcyc", "tail_mcyc",
                           "total_mcyc", "agg_tok_per_s"});
  double serial_prompt_mcyc = 0.0;
  Cycles serial_prompt_cycles = 0;
  for (const int chunk : {0, 2, 4, 8}) {
    runtime::BatchedEngine engine(
        session,
        {.max_batch = 4, .max_pending = 64, .prefill_chunk_tokens = chunk});
    for (int i = 0; i < 8; ++i) {
      (void)*engine.submit({1 + i, 9 - i, 3, 7}, decode_tokens);
    }
    (void)engine.run_to_completion();
    const auto& stats = engine.stats();
    const double prompt_mcyc =
        static_cast<double>(stats.prefill_cycles) / 1e6;
    if (chunk == 0) {
      serial_prompt_mcyc = prompt_mcyc;
      serial_prompt_cycles = stats.prefill_cycles;
    }
    chunk_table.row()
        .add(chunk)
        .add(stats.steps)
        .add(stats.prefill_steps)
        .add(prompt_mcyc, 2)
        .add(serial_prompt_mcyc / prompt_mcyc, 2)
        .add(static_cast<double>(stats.prefill_cycles_hidden) / 1e6, 2)
        .add(static_cast<double>(stats.prefill_stall_cycles) / 1e6, 2)
        .add(static_cast<double>(stats.total_cycles) / 1e6, 2)
        .add(stats.aggregate_tokens_per_s(freq_hz), 1);
    if (chunk > 0 && stats.prefill_cycles >= serial_prompt_cycles) {
      std::cout << "WARNING: chunk " << chunk
                << " did not beat the serial prompt charge\n";
    }
  }
  chunk_table.print(std::cout);
  std::cout << "\nprompt_mcyc is the prompt-phase charge (chunk compute + "
               "visible stream\ntails); its drop versus chunk 0 is the "
               "chunked model's win — the chunk\nstreams' port windows "
               "(service + FIFO queueing) hide behind batch compute\n"
               "(hidden_mcyc) and short prompts stop paying the full "
               "static prefill shape.\n";

  std::cout << "\nCSV:\n";
  table.write_csv(std::cout);
  chunk_table.write_csv(std::cout);
  return 0;
}
