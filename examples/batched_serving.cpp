// Batched serving walkthrough: submit a handful of generation requests
// with mixed prompt lengths to one deployed (model, chip-count) system,
// let them share the batch with continuous admission, and show that
// every stream matches what a dedicated InferenceSession::generate call
// would have produced — while the aggregate cost is lower than serving
// them one after another.
#include <iostream>
#include <map>
#include <vector>

#include "runtime/batched_engine.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/scheduler.hpp"

using namespace distmcu;

namespace {

/// Full-width TinyLlama blocks (layer count and vocabulary cut for a
/// quick demo); at 4 chips the weights stream from L3 every decode
/// step, so sharing them across the batch shows up in the aggregate.
model::TransformerConfig demo_model() {
  auto cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.num_layers = 2;
  cfg.vocab_size = 100;
  cfg.ar_context = 32;
  cfg.prompt_len = 4;
  cfg.validate();
  return cfg;
}

void print_tokens(const std::vector<int>& tokens) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    std::cout << (i == 0 ? "" : " ") << tokens[i];
  }
}

}  // namespace

int main() {
  const auto cfg = demo_model();
  const double freq_hz = 500e6;
  const runtime::InferenceSession session(cfg, 4);

  // Two KV slots serving three requests: the third waits in the queue
  // and joins the batch when the short request finishes.
  runtime::BatchedEngine engine(session, {.max_batch = 2, .max_pending = 8});
  struct Job {
    runtime::RequestId id;
    std::vector<int> prompt;
    int new_tokens;
  };
  std::vector<Job> jobs;
  for (const auto& [prompt, n] :
       std::vector<std::pair<std::vector<int>, int>>{
           {{1, 2, 3}, 8}, {{9}, 3}, {{4, 7, 7, 2}, 6}}) {
    const auto id = engine.submit(prompt, n);
    if (!id) {
      std::cout << "request rejected (queue full)\n";
      continue;
    }
    jobs.push_back({*id, prompt, n});
  }

  const auto results = engine.run_to_completion();
  const auto& stats = engine.stats();

  std::cout << "KV pool: " << engine.kv_arena().memory_map() << "\n";
  Cycles sequential_cycles = 0;
  std::map<runtime::RequestId, std::vector<int>> solo_tokens;
  for (const auto& r : results) {
    for (const auto& job : jobs) {
      if (job.id != r.id) continue;
      const auto solo = session.generate(job.prompt, job.new_tokens);
      sequential_cycles += solo.total_cycles;
      solo_tokens[job.id] = solo.tokens;
      std::cout << "request " << r.id << " (admitted step " << r.admitted_step
                << ", finished step " << r.finished_step << ")\n  tokens: ";
      print_tokens(r.gen.tokens);
      std::cout << "\n  matches dedicated generate(): "
                << (r.gen.tokens == solo.tokens ? "yes" : "NO") << "\n";
    }
  }

  std::cout << "\naggregate: " << stats.total_generated << " tokens in "
            << stats.steps << " steps, "
            << stats.aggregate_tokens_per_s(freq_hz) << " tok/s, "
            << stats.mj_per_token() << " mJ/token\n";
  std::cout << "batched cycles: " << stats.total_cycles
            << " vs sequential serving: " << sequential_cycles << "\n";
  std::cout << "prefetch overlap: " << stats.stream_cycles_hidden
            << " stream cycles hidden behind compute, "
            << stats.prefetch_stall_cycles
            << " stalled (visible) across " << stats.decode_steps
            << " decode steps\n";

  // --- chunked prefill: the same workload, prompts split into 2-token
  // chunks co-scheduled with decode steps. The chunks' own weight
  // streaming races the step's compute on the shared L3 port instead of
  // being charged serially per request.
  runtime::BatchedEngine chunked(
      session, {.max_batch = 2, .max_pending = 8, .prefill_chunk_tokens = 2});
  for (const auto& job : jobs) (void)chunked.submit(job.prompt, job.new_tokens);
  const auto chunked_results = chunked.run_to_completion();
  const auto& cs = chunked.stats();
  // The fresh engine reissues the same ids in submit order, so the
  // reference streams computed above apply directly.
  bool all_match = true;
  for (const auto& r : chunked_results) {
    const auto solo = solo_tokens.find(r.id);
    all_match &= solo != solo_tokens.end() && r.gen.tokens == solo->second;
  }
  std::cout << "\nchunked prefill (chunk = 2 tokens):\n"
            << "  tokens still match dedicated generate(): "
            << (all_match ? "yes" : "NO") << "\n"
            << "  prompt phase charged " << cs.prefill_cycles
            << " cycles vs " << stats.prefill_cycles
            << " under serial prefill ("
            << cs.prefill_cycles_hidden
            << " prompt-stream cycles hidden behind batch compute, "
            << cs.prefill_stall_cycles << " visible)\n"
            << "  total: " << cs.total_cycles << " cycles across "
            << cs.steps << " steps (" << cs.prefill_steps
            << " ran prompt chunks)\n";

  // --- latency-aware scheduling: one long best-effort job submitted
  // ahead of two short deadline jobs, served with a single KV slot so
  // the admission order decides who waits. FIFO drains the long job
  // first and both deadlines blow in the queue; EDF admits the deadline
  // jobs ahead — same total work, different miss counts. Token streams
  // stay bit-identical to generate() under any admission order.
  const Cycles deadline = 40'000'000;
  struct SloJob {
    std::vector<int> prompt;
    int new_tokens;
    runtime::SloSpec slo;
  };
  const std::vector<SloJob> slo_jobs{
      {{1, 2, 3}, 12, {.priority = 2, .deadline_cycles = runtime::kNoDeadline}},
      {{9}, 2, {.priority = 0, .deadline_cycles = deadline}},
      {{4, 7}, 2, {.priority = 0, .deadline_cycles = deadline}},
  };
  std::cout << "\nlatency-aware scheduling (1 KV slot, deadline "
            << deadline << " cycles):\n";
  for (const auto policy :
       {runtime::SchedulePolicy::fifo, runtime::SchedulePolicy::edf}) {
    runtime::BatchedEngine sched_engine(
        session, {.max_batch = 1,
                  .max_pending = 8,
                  .prefill_chunk_tokens = 2,
                  .scheduler = runtime::make_scheduler(policy)});
    std::map<runtime::RequestId, const SloJob*> by_id;
    for (const auto& job : slo_jobs) {
      by_id[*sched_engine.submit(job.prompt, job.new_tokens, job.slo)] = &job;
    }
    const auto sched_results = sched_engine.run_to_completion();
    const auto& ss = sched_engine.stats();
    bool match = true;
    for (const auto& r : sched_results) {
      const SloJob& job = *by_id.at(r.id);
      match &= r.gen.tokens == session.generate(job.prompt, job.new_tokens).tokens;
    }
    std::cout << "  " << runtime::policy_name(policy) << ": "
              << ss.deadline_misses << "/" << ss.slo_requests
              << " deadline misses, p95 queue delay " << ss.queue_delay_p95
              << " cycles, total " << ss.total_cycles << " cycles, streams "
              << (match ? "match generate()" : "MISMATCH") << "\n";
  }
  std::cout << "  (EDF admits the deadline jobs ahead of the queued "
               "best-effort job.)\n";
  return 0;
}
