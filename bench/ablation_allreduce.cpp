// Ablation A1 (DESIGN.md): the hierarchical group-of-4 all-reduce vs a
// flat all-to-one reduce and other group sizes — the design choice
// behind the paper's Fig. 1 ("an all-to-one reduce operation lacks the
// required scalability").
#include <iostream>

#include "bench_common.hpp"

using namespace distmcu;

int main() {
  const auto cfg = model::TransformerConfig::tiny_llama_scaled(64);

  std::cout << "Ablation A1 — all-reduce topology, scaled TinyLlama, prompt mode\n";
  util::Table table({"chips", "topology", "block_cycles", "c2c_cycles", "speedup_vs_flat"});
  for (const int n : {8, 16, 32, 64}) {
    const auto plan = partition::PartitionPlan::create(cfg, n);

    runtime::SystemConfig flat = runtime::SystemConfig::siracusa_system();
    flat.flat_topology = true;
    const auto r_flat = runtime::TimedBlockSimulation(flat).run(plan, model::Mode::prompt);

    for (const int g : {2, 4, 8}) {
      runtime::SystemConfig sys = runtime::SystemConfig::siracusa_system();
      sys.group_size = g;
      const auto r = runtime::TimedBlockSimulation(sys).run(plan, model::Mode::prompt);
      table.row()
          .add(n)
          .add("hier-g" + std::to_string(g))
          .add(r.block_cycles)
          .add(r.breakdown.c2c)
          .add(static_cast<double>(r_flat.block_cycles) /
                   static_cast<double>(r.block_cycles),
               3);
    }
    table.row()
        .add(n)
        .add("flat all-to-one")
        .add(r_flat.block_cycles)
        .add(r_flat.breakdown.c2c)
        .add(1.0, 3);
  }
  table.print(std::cout);
  std::cout << "\nreading: the flat reduce serializes N-1 ingress transfers on the "
               "root and falls behind every hierarchy as N grows — the paper's "
               "motivation for grouping. Within the hierarchies, SMALLER groups win "
               "at large N (g2 beats the paper's g4 by ~19% at 64 chips in prompt "
               "mode): each level serializes group_size-1 transfers on its leader's "
               "ingress, so a deeper, narrower tree trades hops for less "
               "serialization — a refinement opportunity the paper leaves on the "
               "table.\n";
  return 0;
}
