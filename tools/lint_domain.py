#!/usr/bin/env python3
"""Repo-specific lint over src/ — rules a generic linter cannot know.

Rules (suppress a single line with a trailing ``// lint-domain: allow``):

* ``no-raw-assert`` — raw ``assert(`` is banned in src/: contract
  violations must throw through util::check / DISTMCU_CHECK so release
  builds (NDEBUG) keep the guard and callers can catch distmcu::Error.
  ``static_assert`` is fine.
* ``unsaturated-deadline`` — binary ``+``/``*``/``+=``/``*=`` directly
  on the deadline fields (``deadline_at`` / ``deadline_cycles``) outside
  ``util::sat_add`` wraps near the Cycles max and turns a huge relative
  deadline into an always-missed absolute one. Resolve deadlines with
  ``util::sat_add`` instead.
* ``unsaturated-bytes-roundup`` — a manual align-up on ``Bytes``
  (``(size + mask) & ~mask`` — any line mixing a binary ``+`` with
  ``& ~`` masking) wraps near the Bytes max: a size within
  ``alignment - 1`` of the max rounds to a tiny value that then "fits"
  any arena. Route alignment through the saturating
  ``Arena::align_up`` instead.
* ``raw-precision-int`` — a ``...bits`` variable or member initialized
  or assigned from a bare nonzero integer literal hardcodes a precision
  width the type system cannot check; widths must come from the
  ``runtime::Precision`` / ``runtime::KvLayout`` vocabulary
  (``kv_layout_bits`` and friends in ``src/runtime/precision.hpp``,
  which is the one file allowed to spell the literals). Zero stays
  legal as the "unset" sentinel.
* ``tracer-pairing`` — every ``Tracer::set_request(id)`` /
  ``set_model(m)`` tag must be cleared with ``set_request(kNoRequest)``
  / ``set_model(kNoModel)`` in the same source file: a file that opens
  more request/model scopes than it closes leaks the tag onto unrelated
  spans. Checked as a per-file begin/end balance.

With ``--docs <dir>`` two documentation rules run as well:

* ``docs-coverage`` — every stable diagnostic code (``DMCU-XXX-NNN``)
  and every bench JSON schema id (``distmcu.<name>.vN``) found in
  src/bench/tools must appear somewhere in the docs tree: the codes and
  schemas are public contract, so an undocumented one is a doc bug, not
  an oversight CI should tolerate.
* ``docs-snippet-sync`` — every ```` ```cpp ```` fence in
  ``docs/extending.md`` must appear verbatim (modulo one uniform
  indent) in ``tests/test_doc_snippets.cpp``, which compiles and runs
  the examples; a fence with no compiled twin is documentation that can
  rot.

Exit status: 0 when clean, 1 with one line per finding otherwise.
Uses only the Python standard library.
"""

import argparse
import os
import re
import sys

SUPPRESS = "lint-domain: allow"

RAW_ASSERT = re.compile(r"(?<![\w.])assert\s*\(")
STATIC_ASSERT = re.compile(r"static_assert\s*\(")

# `x.deadline_at + y`, `a + slo.deadline_cycles`, `deadline_at *= k`, ...
DEADLINE_FIELD = r"(?:[A-Za-z_]\w*(?:\.|->))*deadline_(?:at|cycles)\b"
UNSATURATED = re.compile(
    r"(?:"
    rf"{DEADLINE_FIELD}\s*(?:\+(?!\+)|\*)"   # field + ... / field * ...
    r"|"
    rf"(?:(?<!\+)\+|\*)\s*{DEADLINE_FIELD}"  # ... + field / ... * field
    r")")

# Manual round-up-and-mask on the same line: `(size + mask) & ~mask`,
# `(sz + align - 1) & ~(align - 1)`, in either operand order. The `+`
# must be binary (not ++).
BYTES_ROUNDUP = re.compile(
    r"(?:"
    r"(?<!\+)\+(?!\+)[^&;]*&\s*~"   # ... + ... & ~...
    r"|"
    r"&\s*~[^;]*(?<!\+)\+(?!\+)"    # ... & ~... + ...
    r")")

# `kv_bits = 4`, `int elem_bits{8}`, `kv_bits_(16)`: a bare nonzero
# literal where a Precision/KvLayout-derived width belongs. `= 0` is the
# unset sentinel and stays legal; comparisons (==, <=, ...) and compound
# ops do not match.
RAW_PRECISION = re.compile(
    r"\b[A-Za-z_]\w*[Bb]its\w*\s*"
    r"(?:(?<![<>!=+\-*/&|^%])=(?!=)|\{|\()\s*[1-9]")

# The precision vocabulary itself must spell the widths once.
PRECISION_HOME = os.path.join("runtime", "precision.hpp")

SET_REQ_DEF = re.compile(r"^\s*(?:void\s+)?set_request\s*\(\s*int\b")
SET_MODEL_DEF = re.compile(r"^\s*(?:void\s+)?set_model\s*\(\s*int\b")
SET_REQ = re.compile(r"\bset_request\s*\(([^)]*)\)")
SET_MODEL = re.compile(r"\bset_model\s*\(([^)]*)\)")


def strip_noise(line, in_block_comment):
    """Drop string/char literals, // comments, and /* */ comment spans so
    the rules only see code. Returns (code, still_in_block_comment)."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            in_block_comment = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            out.append(quote + quote)  # keep an empty literal placeholder
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block_comment


def lint_file(path, findings):
    with open(path, encoding="utf-8") as f:
        raw_lines = f.read().splitlines()

    req_open = req_close = 0
    model_open = model_close = 0
    in_block = False
    for lineno, raw in enumerate(raw_lines, 1):
        code, in_block = strip_noise(raw, in_block)
        if not code.strip() or SUPPRESS in raw:
            continue

        if RAW_ASSERT.search(STATIC_ASSERT.sub("", code)):
            findings.append(
                f"{path}:{lineno}: [no-raw-assert] raw assert( in src/; "
                f"throw via util::check / DISTMCU_CHECK instead")

        if "sat_add" not in code and UNSATURATED.search(code):
            findings.append(
                f"{path}:{lineno}: [unsaturated-deadline] unsaturated "
                f"+/* on a deadline field; use util::sat_add")

        if "&&" not in code and BYTES_ROUNDUP.search(code):
            findings.append(
                f"{path}:{lineno}: [unsaturated-bytes-roundup] manual "
                f"round-up-and-mask wraps near the Bytes max; use the "
                f"saturating Arena::align_up")

        if (not path.endswith(PRECISION_HOME)
                and RAW_PRECISION.search(code)):
            findings.append(
                f"{path}:{lineno}: [raw-precision-int] bare integer "
                f"literal assigned to a ...bits variable; derive the "
                f"width from runtime::Precision / runtime::KvLayout "
                f"(kv_layout_bits) instead")

        if not SET_REQ_DEF.search(code):
            for m in SET_REQ.finditer(code):
                if "kNoRequest" in m.group(1):
                    req_close += 1
                else:
                    req_open += 1
        if not SET_MODEL_DEF.search(code):
            for m in SET_MODEL.finditer(code):
                if "kNoModel" in m.group(1):
                    model_close += 1
                else:
                    model_open += 1

    if req_open != req_close:
        findings.append(
            f"{path}: [tracer-pairing] set_request(id) tags opened "
            f"{req_open} time(s) but cleared with set_request(kNoRequest) "
            f"{req_close} time(s)")
    if model_open != model_close:
        findings.append(
            f"{path}: [tracer-pairing] set_model(m) tags opened "
            f"{model_open} time(s) but cleared with set_model(kNoModel) "
            f"{model_close} time(s)")


DIAG_CODE = re.compile(r"\bDMCU-[A-Z]+-\d{3}\b")
SCHEMA_ID = re.compile(r"\bdistmcu\.[a-z_]+\.v\d+\b")
CPP_FENCE = re.compile(r"```cpp\n(.*?)```", re.S)

# Directories scanned for public identifiers (codes / schema ids); the
# docs tree must mention every one of them.
ID_ROOTS = ("src", "bench", "tools")
ID_SUFFIXES = (".cpp", ".hpp", ".h", ".cc", ".py")

SNIPPET_DOC_NAME = "extending.md"
SNIPPET_TEST = os.path.join("tests", "test_doc_snippets.cpp")


def fence_in_lines(snippet_lines, file_lines):
    """Whether `snippet_lines` appears as a contiguous run in
    `file_lines`, allowing one uniform whitespace prefix on every
    non-blank line (doc fences sit at column 0; the compiled twin may
    live inside a function body)."""
    n = len(snippet_lines)
    for start in range(len(file_lines) - n + 1):
        prefix = None
        for s, w in zip(snippet_lines, file_lines[start:start + n]):
            if not s.strip():
                if w.strip():
                    break
                continue
            if prefix is None:
                if w.endswith(s) and not w[:len(w) - len(s)].strip():
                    prefix = w[:len(w) - len(s)]
                    continue
                break
            if w != prefix + s:
                break
        else:
            return True
    return False


def lint_docs(docs_dir, findings):
    """docs-coverage + docs-snippet-sync (see the module docstring)."""
    docs_text = []
    for dirpath, _, names in os.walk(docs_dir):
        for name in sorted(names):
            if name.endswith(".md"):
                with open(os.path.join(dirpath, name), encoding="utf-8") as f:
                    docs_text.append(f.read())
    docs_text = "\n".join(docs_text)
    if not docs_text:
        findings.append(f"{docs_dir}: [docs-coverage] no markdown files found")
        return

    codes, schemas = set(), set()
    for root in ID_ROOTS:
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if not name.endswith(ID_SUFFIXES):
                    continue
                with open(os.path.join(dirpath, name), encoding="utf-8") as f:
                    text = f.read()
                codes.update(DIAG_CODE.findall(text))
                schemas.update(SCHEMA_ID.findall(text))
    for code in sorted(codes):
        if code not in docs_text:
            findings.append(
                f"{docs_dir}: [docs-coverage] diagnostic code {code} is "
                f"undocumented in the docs tree")
    for schema in sorted(schemas):
        if schema not in docs_text:
            findings.append(
                f"{docs_dir}: [docs-coverage] bench schema {schema} is "
                f"undocumented in the docs tree")

    snippet_doc = os.path.join(docs_dir, SNIPPET_DOC_NAME)
    if not os.path.exists(snippet_doc):
        return
    with open(snippet_doc, encoding="utf-8") as f:
        doc = f.read()
    fences = [m.group(1).rstrip("\n").splitlines()
              for m in CPP_FENCE.finditer(doc)]
    fences = [fc for fc in fences if any(line.strip() for line in fc)]
    if fences and not os.path.exists(SNIPPET_TEST):
        findings.append(
            f"{snippet_doc}: [docs-snippet-sync] has cpp fences but "
            f"{SNIPPET_TEST} does not exist")
        return
    if fences:
        with open(SNIPPET_TEST, encoding="utf-8") as f:
            test_lines = f.read().splitlines()
        for idx, fence in enumerate(fences, 1):
            if not fence_in_lines(fence, test_lines):
                first = next(line.strip() for line in fence if line.strip())
                findings.append(
                    f"{snippet_doc}: [docs-snippet-sync] cpp fence #{idx} "
                    f"(starting {first!r}) has no verbatim twin in "
                    f"{SNIPPET_TEST}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("roots", nargs="*", default=["src"],
                    help="directories to lint (default: src)")
    ap.add_argument("--docs", default=None, metavar="DIR",
                    help="docs tree; enables docs-coverage and "
                         "docs-snippet-sync")
    args = ap.parse_args()

    files = []
    for root in args.roots or ["src"]:
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith((".cpp", ".hpp", ".h", ".cc")):
                    files.append(os.path.join(dirpath, name))
    files.sort()
    if not files:
        print("lint_domain: no C++ sources found", file=sys.stderr)
        return 1

    findings = []
    for path in files:
        lint_file(path, findings)
    if args.docs:
        lint_docs(args.docs, findings)

    if findings:
        print("DOMAIN LINT FAILED:")
        for f in findings:
            print(f"  - {f}")
        return 1
    rules = ("no-raw-assert, unsaturated-deadline, "
             "unsaturated-bytes-roundup, raw-precision-int, "
             "tracer-pairing")
    if args.docs:
        rules += ", docs-coverage, docs-snippet-sync"
    print(f"domain lint OK: {len(files)} files clean ({rules})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
