// Randomized fleet-routing invariant suite: seeded heterogeneous fleets
// (node counts, chip counts, KV page configs, link models) serving
// seeded workloads under every built-in RoutingPolicy, asserting the
// request-conservation invariants of fleet::Router —
//   * offered == placed + rejected, with the rejection reasons
//     partitioning the rejects,
//   * routed == placed + misrouted across dispatch attempts,
//   * per node, attempts == placed + link_rejected + engine rejections,
//     and the per-node attempts sum exactly to the routed count,
//   * after a drain, placed == completed + shed and every completion's
//     fleet timeline (submit -> node finish -> response landing) is
//     consistent with the global clock,
// plus the functional property that routing decides placement, never
// content: every routed stream is bit-exact with a dedicated
// single-request engine on the same deployment. Deterministic
// single-node cases pin the link-infeasibility path (the engine never
// sees a request whose deadline the link alone exhausts) and the
// null hypothesis that a 1-node fleet over an ideal link serves
// exactly like the bare engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fleet/router.hpp"
#include "fleet/routing_policy.hpp"
#include "invariant_env.hpp"
#include "runtime/batched_engine.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/model_registry.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

using namespace distmcu;
using fleet::FleetRequestId;
using fleet::FleetResult;
using fleet::FleetStats;
using fleet::LinkModel;
using fleet::RoutePolicy;
using fleet::Router;
using runtime::BatchedEngine;
using runtime::InferenceSession;
using runtime::ModelRegistry;
using runtime::SloSpec;

namespace {

using distmcu::testing::invariant_seed_count;
using distmcu::testing::SeedReproLog;

constexpr int kPromptLen = 8;

model::TransformerConfig decoder_cfg() {
  auto cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.name = "tinyllama";
  cfg.embed_dim = 32;
  cfg.ffn_dim = 64;
  cfg.num_heads = 4;
  cfg.head_dim = 8;
  cfg.num_layers = 2;
  cfg.vocab_size = 100;
  cfg.ar_context = 32;
  cfg.prompt_len = kPromptLen;
  cfg.validate();
  return cfg;
}

model::TransformerConfig encoder_cfg() {
  auto cfg = decoder_cfg();
  cfg.name = "tinybert";
  cfg.ffn_dim = 96;
  cfg.ar_context = kPromptLen;
  cfg.mask = model::MaskKind::bidirectional;
  cfg.validate();
  return cfg;
}

/// Sessions are expensive (weights + plan + sharding) and shareable
/// across engines, so the suite builds each partition variant once.
const InferenceSession& llama_session(int chips) {
  static const InferenceSession four(decoder_cfg(), 4);
  static const InferenceSession two(decoder_cfg(), 2);
  return chips == 4 ? four : two;
}

const InferenceSession& bert_session() {
  static const InferenceSession s(encoder_cfg(), 4);
  return s;
}

struct NodeSpec {
  int chips = 4;
  bool has_bert = false;
  int page_tokens = 4;
  int kv_pages = 16;
  LinkModel link;
};

struct Job {
  std::string model;
  std::vector<int> prompt;
  int new_tokens = 0;
  Cycles at = 0;
  SloSpec slo;
  std::optional<FleetRequestId> id;
};

struct Scenario {
  std::vector<NodeSpec> nodes;
  std::vector<Job> jobs;
  bool any_bert = false;
};

Scenario make_scenario(std::uint64_t seed) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ull + 11);
  Scenario sc;
  const int n_nodes = 2 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < n_nodes; ++i) {
    NodeSpec n;
    n.chips = rng.next_below(2) == 0 ? 4 : 2;
    n.has_bert = n.chips == 4 && rng.next_below(2) == 0;
    n.page_tokens = 2 << rng.next_below(3);  // 2, 4, 8
    n.kv_pages = 8 + static_cast<int>(rng.next_below(5)) * 8;
    n.link.latency_cycles = rng.next_below(20'000);
    n.link.cycles_per_byte = rng.next_double() * 2.0;
    sc.nodes.push_back(n);
    sc.any_bert = sc.any_bert || n.has_bert;
  }
  const auto& cfg = llama_session(4).config();
  const int n_jobs = 8 + static_cast<int>(rng.next_below(17));
  Cycles t = 0;
  for (int j = 0; j < n_jobs; ++j) {
    Job job;
    t += rng.next_below(400'000);
    job.at = t;
    const bool bert = rng.next_below(4) == 0;
    job.model = bert ? "tinybert" : "tinyllama";
    const int plen = 1 + static_cast<int>(rng.next_below(kPromptLen));
    for (int k = 0; k < plen; ++k) {
      job.prompt.push_back(static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(cfg.vocab_size))));
    }
    job.new_tokens =
        bert ? 0 : 1 + static_cast<int>(rng.next_below(5));
    job.slo.priority = static_cast<int>(rng.next_below(3));
    if (rng.next_below(3) != 0) {
      job.slo.deadline_cycles = (1 + rng.next_below(64)) * 1'000'000;
    }
    sc.jobs.push_back(std::move(job));
  }
  return sc;
}

/// A fresh fleet for one scenario: registries, engines, router. Engines
/// are borrowed by the router, so the bundle owns them together.
struct Fleet {
  std::vector<ModelRegistry> regs;
  std::vector<std::unique_ptr<BatchedEngine>> engines;
  std::unique_ptr<Router> router;
};

Fleet make_fleet(const Scenario& sc, RoutePolicy which) {
  Fleet f;
  f.regs.resize(sc.nodes.size());
  f.router = std::make_unique<Router>(fleet::make_routing_policy(which));
  for (std::size_t i = 0; i < sc.nodes.size(); ++i) {
    const NodeSpec& n = sc.nodes[i];
    (void)f.regs[i].add(llama_session(n.chips), "tinyllama",
                        /*prefill_chunk_tokens=*/4,
                        /*kv_quota=*/n.has_bert ? n.kv_pages * 3 / 4
                                                : n.kv_pages);
    if (n.has_bert) {
      (void)f.regs[i].add(bert_session(), "tinybert",
                          /*prefill_chunk_tokens=*/4,
                          /*kv_quota=*/n.kv_pages / 4);
    }
    f.engines.push_back(std::make_unique<BatchedEngine>(
        f.regs[i],
        BatchedEngine::MultiOptions{.total_kv_slots = n.kv_pages,
                                    .max_pending = 8,
                                    .kv_page_tokens = n.page_tokens,
                                    .prefix_sharing = (i % 2) == 0},
        nullptr));
    (void)f.router->add_node(*f.engines.back(), n.link);
  }
  return f;
}

void run_jobs(Scenario& sc, Router& router) {
  for (auto& job : sc.jobs) {
    job.id = router.submit(job.model, job.prompt, job.new_tokens, job.slo,
                           job.at);
  }
  (void)router.run_to_completion();
}

void check_conservation(const Scenario& sc, const Router& router,
                        std::uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  const FleetStats s = router.stats();
  const auto& finished = router.finished();

  int placed = 0;
  for (const auto& job : sc.jobs) placed += job.id.has_value() ? 1 : 0;
  EXPECT_EQ(s.offered, static_cast<int>(sc.jobs.size()));
  EXPECT_EQ(s.placed, placed);
  EXPECT_EQ(s.offered, s.placed + s.rejected);
  EXPECT_EQ(s.rejected, s.rejected_no_model + s.rejected_all_nodes);
  EXPECT_EQ(s.routed, static_cast<std::uint64_t>(s.placed) + s.misrouted);
  EXPECT_EQ(s.placed, s.completed + s.shed);
  EXPECT_EQ(static_cast<int>(finished.size()), s.completed);

  // Per-node books: every dispatch is placed, link-refused, or
  // engine-refused, and the per-node sums reproduce the fleet counters.
  std::uint64_t attempts = 0;
  int node_placed = 0;
  int node_completed = 0;
  for (const auto& pn : s.per_node) {
    attempts += pn.attempts;
    node_placed += pn.placed;
    node_completed += pn.completed;
    EXPECT_EQ(pn.attempts,
              static_cast<std::uint64_t>(pn.placed) +
                  static_cast<std::uint64_t>(pn.link_rejected) +
                  static_cast<std::uint64_t>(pn.serving.rejected));
  }
  EXPECT_EQ(attempts, s.routed);
  EXPECT_EQ(node_placed, s.placed);
  EXPECT_EQ(node_completed, s.completed);

  // Fleet timeline: results land after their submit, the makespan is
  // the last landing, and the SLO books match the per-result verdicts.
  int misses = 0;
  int slo_requests = 0;
  Cycles last = 0;
  for (const FleetResult& f : finished) {
    EXPECT_GE(f.finished_at, f.submitted_at);
    last = std::max(last, f.finished_at);
    if (f.deadline_at != runtime::kNoDeadline) {
      ++slo_requests;
      misses += f.missed_deadline() ? 1 : 0;
    }
  }
  EXPECT_EQ(s.makespan, last);
  EXPECT_EQ(s.slo_requests, slo_requests);
  EXPECT_EQ(s.deadline_misses, misses);

  // Models nobody deploys can only be rejected for that reason.
  if (!sc.any_bert) {
    int bert_jobs = 0;
    for (const auto& job : sc.jobs) {
      bert_jobs += job.model == "tinybert" ? 1 : 0;
    }
    EXPECT_EQ(s.rejected_no_model, bert_jobs);
  }
}

}  // namespace

TEST(FleetServingInvariants, RandomizedFleetsConserveEveryRequest) {
  // Seeded heterogeneous fleets under all four routing policies (the
  // nightly job raises the seed count via DISTMCU_INVARIANT_SEEDS).
  const std::uint64_t kSeeds = invariant_seed_count(30);
  SeedReproLog repro("./test_fleet",
                     "FleetServingInvariants.RandomizedFleetsConserveEveryRequest");
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    repro.begin();
    for (const auto which :
         {RoutePolicy::round_robin, RoutePolicy::join_shortest_queue,
          RoutePolicy::cost_aware, RoutePolicy::prefix_affinity}) {
      Scenario sc = make_scenario(seed);
      Fleet f = make_fleet(sc, which);
      run_jobs(sc, *f.router);
      SCOPED_TRACE(std::string("policy ") + fleet::route_policy_name(which));
      check_conservation(sc, *f.router, seed);
    }
    repro.end(seed);
  }
}

TEST(FleetServingInvariants, RoutedStreamsBitExactWithDedicatedEngine) {
  // Routing decides placement, never content: every completion's token
  // stream equals a dedicated generate() on the session its node runs.
  for (std::uint64_t seed = 500; seed < 512; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    for (const auto which :
         {RoutePolicy::round_robin, RoutePolicy::prefix_affinity}) {
      Scenario sc = make_scenario(seed);
      Fleet f = make_fleet(sc, which);
      run_jobs(sc, *f.router);
      std::map<FleetRequestId, const Job*> by_id;
      for (const auto& job : sc.jobs) {
        if (job.id.has_value()) by_id[*job.id] = &job;
      }
      for (const FleetResult& r : f.router->finished()) {
        ASSERT_EQ(by_id.count(r.id), 1u);
        const Job& job = *by_id[r.id];
        const NodeSpec& n = sc.nodes[static_cast<std::size_t>(r.node)];
        const auto& session = job.model == "tinybert"
                                  ? bert_session()
                                  : llama_session(n.chips);
        EXPECT_EQ(r.result.gen.tokens,
                  session.generate(job.prompt, job.new_tokens).tokens)
            << "policy " << fleet::route_policy_name(which);
      }
    }
  }
}

TEST(FleetServingInvariants, FleetsAreDeterministic) {
  // Same seed, same policy -> identical placement, stamps, and streams.
  for (const std::uint64_t seed : {7u, 42u, 93u}) {
    Scenario sa = make_scenario(seed);
    Scenario sb = make_scenario(seed);
    Fleet fa = make_fleet(sa, RoutePolicy::cost_aware);
    Fleet fb = make_fleet(sb, RoutePolicy::cost_aware);
    run_jobs(sa, *fa.router);
    run_jobs(sb, *fb.router);
    const auto& ra = fa.router->finished();
    const auto& rb = fb.router->finished();
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].id, rb[i].id);
      EXPECT_EQ(ra[i].node, rb[i].node);
      EXPECT_EQ(ra[i].finished_at, rb[i].finished_at);
      EXPECT_EQ(ra[i].result.gen.tokens, rb[i].result.gen.tokens);
    }
    const FleetStats a = fa.router->stats();
    const FleetStats b = fb.router->stats();
    EXPECT_EQ(a.routed, b.routed);
    EXPECT_EQ(a.deadline_misses, b.deadline_misses);
    EXPECT_EQ(a.transfer_bytes, b.transfer_bytes);
    EXPECT_EQ(a.makespan, b.makespan);
  }
}

TEST(FleetServingInvariants, LinkInfeasibleDeadlineNeverReachesTheEngine) {
  // A deadline the link round trip alone exhausts is refused at the
  // router (link_rejected), not forwarded: the engine's own books stay
  // untouched and the reject is attributed to the all-nodes bucket.
  ModelRegistry reg;
  (void)reg.add(llama_session(4), "tinyllama", /*prefill_chunk_tokens=*/0,
                /*kv_quota=*/8);
  BatchedEngine engine(
      reg, BatchedEngine::MultiOptions{.total_kv_slots = 8, .max_pending = 4},
      nullptr);
  Router router(fleet::make_routing_policy(RoutePolicy::round_robin));
  (void)router.add_node(engine, LinkModel{.latency_cycles = 1'000'000});

  const auto id = router.submit("tinyllama", {1, 2, 3}, 2,
                                {.priority = 0, .deadline_cycles = 100'000},
                                /*at=*/0);
  EXPECT_FALSE(id.has_value());
  const FleetStats s = router.stats();
  EXPECT_EQ(s.offered, 1);
  EXPECT_EQ(s.rejected, 1);
  EXPECT_EQ(s.rejected_all_nodes, 1);
  EXPECT_EQ(s.rejected_no_model, 0);
  EXPECT_EQ(s.per_node[0].link_rejected, 1);
  EXPECT_EQ(s.per_node[0].serving.rejected, 0);
  EXPECT_EQ(engine.pending_requests(), 0);
  EXPECT_EQ(engine.active_requests(), 0);

  // A generous deadline on the same link is placed and completes.
  const auto ok = router.submit("tinyllama", {1, 2, 3}, 2,
                                {.priority = 0, .deadline_cycles = 50'000'000},
                                /*at=*/0);
  ASSERT_TRUE(ok.has_value());
  (void)router.run_to_completion();
  EXPECT_EQ(router.stats().completed, 1);
}

TEST(FleetServingInvariants, UnknownModelRejectsWithoutDispatch) {
  ModelRegistry reg;
  (void)reg.add(llama_session(4), "tinyllama", 0, 8);
  BatchedEngine engine(
      reg, BatchedEngine::MultiOptions{.total_kv_slots = 8, .max_pending = 4},
      nullptr);
  Router router;
  (void)router.add_node(engine, LinkModel{});
  EXPECT_FALSE(router.submit("gpt5", {1}, 1, {}, 0).has_value());
  const FleetStats s = router.stats();
  EXPECT_EQ(s.rejected_no_model, 1);
  EXPECT_EQ(s.routed, 0u);
  EXPECT_EQ(s.per_node[0].attempts, 0u);
}

TEST(FleetServingInvariants, SingleNodeIdealLinkMatchesBareEngine) {
  // Null hypothesis: a 1-node fleet over an ideal link (zero latency,
  // zero per-byte cost) serves exactly like the engine driven directly —
  // same streams, same completion stamps, same deadline verdicts.
  Scenario sc = make_scenario(321);
  sc.nodes.resize(1);
  sc.nodes[0] = NodeSpec{.chips = 4, .has_bert = true, .page_tokens = 4,
                         .kv_pages = 32, .link = LinkModel{}};
  sc.any_bert = true;
  Fleet f = make_fleet(sc, RoutePolicy::round_robin);
  run_jobs(sc, *f.router);

  ModelRegistry reg;
  (void)reg.add(llama_session(4), "tinyllama", 4, 32 * 3 / 4);
  (void)reg.add(bert_session(), "tinybert", 4, 32 / 4);
  BatchedEngine solo(
      reg,
      BatchedEngine::MultiOptions{.total_kv_slots = 32,
                                  .max_pending = 8,
                                  .kv_page_tokens = 4,
                                  .prefix_sharing = true},
      nullptr);
  // Replay the identical workload on the bare engine, emulating the
  // router's timeline by hand: step to each arrival while the engine
  // has work, absorb idle gaps into an offset (the engine clock only
  // moves with work), and re-base each deadline onto the engine clock
  // exactly as the router's link-shrinking does (a no-op shrink here —
  // the link is ideal).
  Cycles offset = 0;
  for (const auto& job : sc.jobs) {
    while (util::sat_add(offset, solo.stats().total_cycles) < job.at) {
      if (solo.active_requests() + solo.pending_requests() == 0) {
        offset = job.at - solo.stats().total_cycles;
        break;
      }
      (void)solo.step();
    }
    const Cycles now = util::sat_add(offset, solo.stats().total_cycles);
    SloSpec node_slo{job.slo.priority, runtime::kNoDeadline};
    bool infeasible = false;
    if (job.slo.deadline_cycles != runtime::kNoDeadline) {
      const Cycles deadline_at = util::sat_add(job.at, job.slo.deadline_cycles);
      if (deadline_at <= now) {
        infeasible = true;
      } else {
        node_slo.deadline_cycles = deadline_at - now;
      }
    }
    if (!infeasible) {
      (void)solo.submit(reg.find(job.model), job.prompt, job.new_tokens,
                        node_slo);
    }
  }
  (void)solo.run_to_completion();

  const FleetStats s = f.router->stats();
  // The ideal link still counts bytes, but charges no cycles for them.
  EXPECT_EQ(s.request_transfer_cycles, 0u);
  EXPECT_EQ(s.response_transfer_cycles, 0u);
  EXPECT_EQ(s.placed, solo.stats().completed + solo.stats().shed);
  EXPECT_EQ(s.completed, solo.stats().completed);
  ASSERT_EQ(f.router->finished().size(), solo.finished().size());
  for (std::size_t i = 0; i < solo.finished().size(); ++i) {
    EXPECT_EQ(f.router->finished()[i].result.gen.tokens,
              solo.finished()[i].gen.tokens);
  }
}
