// Unit tests for the shared double-buffering race: the chain of compute
// spans gated on asynchronous weight-shard DMAs over one FIFO L3 port,
// reused by SteadyStateSimulation (per-block) and BatchedEngine
// (per-decode-step).
#include <gtest/gtest.h>

#include "runtime/prefetch_pipeline.hpp"

using namespace distmcu;
using runtime::PrefetchPipeline;

TEST(PrefetchPipeline, FirstSpanIsStagedAndStallFree) {
  PrefetchPipeline pipe(1.0, 0);
  const auto span = pipe.advance(100, 40);
  EXPECT_EQ(span.begin, 0u);
  EXPECT_EQ(span.start, 0u);
  EXPECT_EQ(span.stall, 0u);
  EXPECT_EQ(span.end, 100u);
  EXPECT_EQ(span.fetch_issue, 0u);
  EXPECT_EQ(span.fetch_ready, 40u);
  EXPECT_EQ(pipe.now(), 100u);
  EXPECT_EQ(pipe.stall_total(), 0u);
}

TEST(PrefetchPipeline, ComputeCoversStreamNoStalls) {
  PrefetchPipeline pipe(1.0, 0);
  for (int i = 0; i < 5; ++i) {
    const auto span = pipe.advance(100, 40);
    EXPECT_EQ(span.stall, 0u);
  }
  EXPECT_EQ(pipe.now(), 500u);
  EXPECT_EQ(pipe.stall_total(), 0u);
}

TEST(PrefetchPipeline, StreamBoundSpansStallForUncoveredRemainder) {
  // compute 10, stream 25: after the staged first span every span waits
  // stream - compute = 15 cycles, so the chain advances at stream rate.
  PrefetchPipeline pipe(1.0, 0);
  const auto s0 = pipe.advance(10, 25);
  EXPECT_EQ(s0.stall, 0u);
  const auto s1 = pipe.advance(10, 25);
  EXPECT_EQ(s1.begin, 10u);
  EXPECT_EQ(s1.start, 25u);  // waits for the fetch issued at cycle 0
  EXPECT_EQ(s1.stall, 15u);
  EXPECT_EQ(s1.end, 35u);
  const auto s2 = pipe.advance(10, 0);
  EXPECT_EQ(s2.stall, 15u);  // fetch issued at 25 lands at 50
  EXPECT_EQ(pipe.now(), 60u);
  EXPECT_EQ(pipe.stall_total(), 30u);
}

TEST(PrefetchPipeline, PortSetupAndBandwidthShapeTheFetch) {
  PrefetchPipeline pipe(2.0, 10);  // service(20 B) = 10 + 10 cycles
  const auto s0 = pipe.advance(5, 20);
  EXPECT_EQ(s0.fetch_ready, 20u);
  const auto s1 = pipe.advance(5, 0);
  EXPECT_EQ(s1.stall, 15u);  // 20 - 5
  EXPECT_EQ(pipe.port().num_transfers(), 1u);
  EXPECT_EQ(pipe.port().total_bytes(), 20u);
}

TEST(PrefetchPipeline, NothingIssuedKeepsStagedWeightsResident) {
  PrefetchPipeline pipe(1.0, 0);
  (void)pipe.advance(10, 0);
  const auto span = pipe.advance(10, 0);
  EXPECT_EQ(span.stall, 0u);
  EXPECT_EQ(span.fetch_issue, span.fetch_ready);
  EXPECT_EQ(pipe.now(), 20u);
}

TEST(PrefetchPipeline, OpaqueSpansDrainInFlightFetches) {
  // A prefill-style span does not consume weights but wall-clock still
  // passes, so a long opaque span absorbs the fetch latency entirely.
  PrefetchPipeline pipe(1.0, 0);
  (void)pipe.advance(1, 25);  // fetch issued at 0, lands at 25
  pipe.advance_opaque(40);
  EXPECT_EQ(pipe.now(), 41u);
  const auto span = pipe.advance(10, 0);
  EXPECT_EQ(span.stall, 0u);  // fetch long since landed
  EXPECT_EQ(pipe.stall_total(), 0u);
}

TEST(PrefetchPipeline, OpaquePortOccupancyDelaysInFlightFetch) {
  // A prefill that streams its own weights occupies the shared port, so
  // an in-flight decode fetch cannot drain at full rate underneath it.
  PrefetchPipeline pipe(1.0, 0);
  (void)pipe.advance(10, 100);  // fetch issued at 0, would land at 100
  pipe.advance_opaque(50, 30);  // 30 of the 50 opaque cycles hold the port
  EXPECT_EQ(pipe.now(), 60u);
  const auto span = pipe.advance(10, 0);
  EXPECT_EQ(span.stall, 70u);  // fetch pushed from 100 to 130

  // With the port idle (nothing in flight), occupancy moves nothing.
  PrefetchPipeline idle(1.0, 0);
  idle.advance_opaque(50, 30);
  const auto staged = idle.advance(10, 0);
  EXPECT_EQ(staged.stall, 0u);
}

TEST(PrefetchPipeline, TimelineIsDeterministicallyEventDriven) {
  // Same inputs, same chain — the sim::Engine event order is stable.
  auto run = [] {
    PrefetchPipeline pipe(1.5, 7);
    Cycles sum = 0;
    for (int i = 0; i < 8; ++i) sum += pipe.advance(13, 31).end;
    return sum;
  };
  EXPECT_EQ(run(), run());
  PrefetchPipeline pipe(1.0, 0);
  (void)pipe.advance(3, 9);
  EXPECT_GT(pipe.engine().events_executed(), 0u);
}
