#include "runtime/inference_session.hpp"

#include "util/check.hpp"

namespace distmcu::runtime {

InferenceSession::InferenceSession(model::TransformerConfig cfg, int n_chips,
                                   SystemConfig sys, std::uint64_t seed)
    : cfg_(std::move(cfg)),
      sys_(std::move(sys)),
      weights_(cfg_, seed),
      embedding_(cfg_, seed),
      plan_(partition::PartitionPlan::create(cfg_, n_chips)),
      shards_(weights_, plan_),
      topo_(sys_.flat_topology ? noc::Topology::flat(n_chips)
                               : noc::Topology::hierarchical(n_chips, sys_.group_size)),
      sim_(sys_),
      energy_(sys_.chip, sys_.link) {
  block_ = std::make_unique<partition::DistributedBlock>(cfg_, weights_, shards_, plan_,
                                                         topo_);
}

namespace {
SystemConfig spec_system(const DeploymentSpec& spec) {
  spec.validate();
  SystemConfig sys = spec.system;
  sys.precision = precision_numerics(spec.precision, sys.precision);
  return sys;
}
}  // namespace

InferenceSession::InferenceSession(const DeploymentSpec& spec)
    : InferenceSession(spec.model, spec.chips, spec_system(spec), spec.seed) {
  precision_ = spec.precision;
  kv_layout_ = spec.kv_layout;
  if (precision_ == Precision::int8) {
    qblock_ = std::make_unique<quant::QuantizedBlock>(cfg_, weights_, shards_, plan_,
                                                      topo_, kv_elem_bits());
  }
}

BlockResult InferenceSession::run_block(model::Mode mode) const {
  BlockResult out;
  out.report = sim_.run(plan_, mode);
  out.energy = energy_.compute(out.report);
  const partition::MemoryPlanner planner(sys_.chip, sys_.precision);
  out.memory = planner.plan(plan_, mode);
  return out;
}

BlockResult InferenceSession::run_prompt_chunk(int chunk_tokens,
                                               int attention_span) const {
  return run_prompt_chunks(chunk_tokens, {attention_span}).front();
}

std::vector<BlockResult> InferenceSession::run_prompt_chunks(
    int chunk_tokens, const std::vector<int>& attention_spans) const {
  DISTMCU_CHECK(chunk_tokens > 0,
              "run_prompt_chunks: chunk_tokens must be positive");
  DISTMCU_CHECK(!attention_spans.empty(),
              "run_prompt_chunks: need at least one attention span");
  // A chunk is a prompt-mode block at its own static shape: prompt_len
  // becomes the chunk length while the attention span tracks the cached
  // prefix. The partition (head/F slices) is shape-independent, so the
  // chunk plan shards identically to the deployment's — and both it and
  // the memory plan are shared across all spans.
  model::TransformerConfig chunk_cfg = cfg_;
  chunk_cfg.prompt_len = chunk_tokens;
  chunk_cfg.validate();
  const auto chunk_plan =
      partition::PartitionPlan::create(chunk_cfg, plan_.num_chips());
  const partition::MemoryPlanner planner(sys_.chip, sys_.precision);
  const partition::MemoryPlan memory =
      planner.plan(chunk_plan, model::Mode::prompt);

  std::vector<BlockResult> out;
  out.reserve(attention_spans.size());
  for (const int span : attention_spans) {
    DISTMCU_CHECK(span >= chunk_tokens,
                "run_prompt_chunks: attention_span must cover the chunk");
    BlockResult r;
    r.report = sim_.run(chunk_plan, model::Mode::prompt, nullptr, span);
    r.energy = energy_.compute(r.report);
    r.memory = memory;
    r.memory.attention_span = span;
    out.push_back(std::move(r));
  }
  return out;
}

GenerationResult InferenceSession::generate(const std::vector<int>& prompt,
                                            int new_tokens) const {
  DISTMCU_CHECK(!prompt.empty(), "generate: prompt must not be empty");
  DISTMCU_CHECK(new_tokens >= 0, "generate: new_tokens must be >= 0");
  DISTMCU_CHECK(static_cast<int>(prompt.size()) + new_tokens <= cfg_.ar_context,
              "generate: sequence exceeds the model's context length");

  GenerationResult out;
  out.tokens = prompt;

  // Per-block costs from the timed model, reused for every layer/token.
  const BlockResult prompt_cost = run_block(model::Mode::prompt);
  const BlockResult ar_cost = run_block(model::Mode::autoregressive);
  const auto layers = static_cast<Cycles>(cfg_.num_layers);

  auto caches = make_chip_caches(cfg_.ar_context);

  // --- prefill: run the prompt through all layers (prompt mode) -------
  model::Tensor h = embedding_.lookup(prompt);
  for (int l = 0; l < cfg_.num_layers; ++l) {
    h = forward(h, l, &caches, 0);
  }
  out.total_cycles += prompt_cost.report.block_cycles * layers;
  out.total_energy_mj += prompt_cost.energy_mj() * static_cast<double>(layers);

  // --- decode: one token at a time against the KV caches --------------
  int pos = static_cast<int>(prompt.size());
  int next = embedding_.greedy_next(h);
  for (int t = 0; t < new_tokens; ++t) {
    out.tokens.push_back(next);
    ++out.generated;
    if (t + 1 == new_tokens) break;
    model::Tensor x = embedding_.lookup({next});
    for (int l = 0; l < cfg_.num_layers; ++l) {
      x = forward(x, l, &caches, pos);
    }
    out.total_cycles += ar_cost.report.block_cycles * layers;
    out.total_energy_mj += ar_cost.energy_mj() * static_cast<double>(layers);
    next = embedding_.greedy_next(x);
    ++pos;
  }
  return out;
}

model::Tensor InferenceSession::encode(const std::vector<int>& tokens) const {
  DISTMCU_CHECK(static_cast<int>(tokens.size()) == cfg_.prompt_len,
              "encode: token count must equal the configured sequence length (" +
                  std::to_string(cfg_.prompt_len) + ")");
  model::Tensor h = embedding_.lookup(tokens);
  for (int l = 0; l < cfg_.num_layers; ++l) {
    h = forward(h, l, nullptr, 0);
  }
  return h;
}

}  // namespace distmcu::runtime
