#!/usr/bin/env python3
"""Repo-specific lint over src/ — rules a generic linter cannot know.

Rules (suppress a single line with a trailing ``// lint-domain: allow``):

* ``no-raw-assert`` — raw ``assert(`` is banned in src/: contract
  violations must throw through util::check / DISTMCU_CHECK so release
  builds (NDEBUG) keep the guard and callers can catch distmcu::Error.
  ``static_assert`` is fine.
* ``unsaturated-deadline`` — binary ``+``/``*``/``+=``/``*=`` directly
  on the deadline fields (``deadline_at`` / ``deadline_cycles``) outside
  ``util::sat_add`` wraps near the Cycles max and turns a huge relative
  deadline into an always-missed absolute one. Resolve deadlines with
  ``util::sat_add`` instead.
* ``unsaturated-bytes-roundup`` — a manual align-up on ``Bytes``
  (``(size + mask) & ~mask`` — any line mixing a binary ``+`` with
  ``& ~`` masking) wraps near the Bytes max: a size within
  ``alignment - 1`` of the max rounds to a tiny value that then "fits"
  any arena. Route alignment through the saturating
  ``Arena::align_up`` instead.
* ``tracer-pairing`` — every ``Tracer::set_request(id)`` /
  ``set_model(m)`` tag must be cleared with ``set_request(kNoRequest)``
  / ``set_model(kNoModel)`` in the same source file: a file that opens
  more request/model scopes than it closes leaks the tag onto unrelated
  spans. Checked as a per-file begin/end balance.

Exit status: 0 when clean, 1 with one line per finding otherwise.
Uses only the Python standard library.
"""

import argparse
import os
import re
import sys

SUPPRESS = "lint-domain: allow"

RAW_ASSERT = re.compile(r"(?<![\w.])assert\s*\(")
STATIC_ASSERT = re.compile(r"static_assert\s*\(")

# `x.deadline_at + y`, `a + slo.deadline_cycles`, `deadline_at *= k`, ...
DEADLINE_FIELD = r"(?:[A-Za-z_]\w*(?:\.|->))*deadline_(?:at|cycles)\b"
UNSATURATED = re.compile(
    r"(?:"
    rf"{DEADLINE_FIELD}\s*(?:\+(?!\+)|\*)"   # field + ... / field * ...
    r"|"
    rf"(?:(?<!\+)\+|\*)\s*{DEADLINE_FIELD}"  # ... + field / ... * field
    r")")

# Manual round-up-and-mask on the same line: `(size + mask) & ~mask`,
# `(sz + align - 1) & ~(align - 1)`, in either operand order. The `+`
# must be binary (not ++).
BYTES_ROUNDUP = re.compile(
    r"(?:"
    r"(?<!\+)\+(?!\+)[^&;]*&\s*~"   # ... + ... & ~...
    r"|"
    r"&\s*~[^;]*(?<!\+)\+(?!\+)"    # ... & ~... + ...
    r")")

SET_REQ_DEF = re.compile(r"^\s*(?:void\s+)?set_request\s*\(\s*int\b")
SET_MODEL_DEF = re.compile(r"^\s*(?:void\s+)?set_model\s*\(\s*int\b")
SET_REQ = re.compile(r"\bset_request\s*\(([^)]*)\)")
SET_MODEL = re.compile(r"\bset_model\s*\(([^)]*)\)")


def strip_noise(line, in_block_comment):
    """Drop string/char literals, // comments, and /* */ comment spans so
    the rules only see code. Returns (code, still_in_block_comment)."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            in_block_comment = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            out.append(quote + quote)  # keep an empty literal placeholder
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block_comment


def lint_file(path, findings):
    with open(path, encoding="utf-8") as f:
        raw_lines = f.read().splitlines()

    req_open = req_close = 0
    model_open = model_close = 0
    in_block = False
    for lineno, raw in enumerate(raw_lines, 1):
        code, in_block = strip_noise(raw, in_block)
        if not code.strip() or SUPPRESS in raw:
            continue

        if RAW_ASSERT.search(STATIC_ASSERT.sub("", code)):
            findings.append(
                f"{path}:{lineno}: [no-raw-assert] raw assert( in src/; "
                f"throw via util::check / DISTMCU_CHECK instead")

        if "sat_add" not in code and UNSATURATED.search(code):
            findings.append(
                f"{path}:{lineno}: [unsaturated-deadline] unsaturated "
                f"+/* on a deadline field; use util::sat_add")

        if "&&" not in code and BYTES_ROUNDUP.search(code):
            findings.append(
                f"{path}:{lineno}: [unsaturated-bytes-roundup] manual "
                f"round-up-and-mask wraps near the Bytes max; use the "
                f"saturating Arena::align_up")

        if not SET_REQ_DEF.search(code):
            for m in SET_REQ.finditer(code):
                if "kNoRequest" in m.group(1):
                    req_close += 1
                else:
                    req_open += 1
        if not SET_MODEL_DEF.search(code):
            for m in SET_MODEL.finditer(code):
                if "kNoModel" in m.group(1):
                    model_close += 1
                else:
                    model_open += 1

    if req_open != req_close:
        findings.append(
            f"{path}: [tracer-pairing] set_request(id) tags opened "
            f"{req_open} time(s) but cleared with set_request(kNoRequest) "
            f"{req_close} time(s)")
    if model_open != model_close:
        findings.append(
            f"{path}: [tracer-pairing] set_model(m) tags opened "
            f"{model_open} time(s) but cleared with set_model(kNoModel) "
            f"{model_close} time(s)")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("roots", nargs="*", default=["src"],
                    help="directories to lint (default: src)")
    args = ap.parse_args()

    files = []
    for root in args.roots or ["src"]:
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith((".cpp", ".hpp", ".h", ".cc")):
                    files.append(os.path.join(dirpath, name))
    files.sort()
    if not files:
        print("lint_domain: no C++ sources found", file=sys.stderr)
        return 1

    findings = []
    for path in files:
        lint_file(path, findings)

    if findings:
        print("DOMAIN LINT FAILED:")
        for f in findings:
            print(f"  - {f}")
        return 1
    print(f"domain lint OK: {len(files)} files clean "
          f"(no-raw-assert, unsaturated-deadline, "
          f"unsaturated-bytes-roundup, tracer-pairing)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
