// Fleet-scale serving bench: one global request stream load-balanced by
// fleet::Router across 8 networked MCU nodes with heterogeneous
// deployments — 4-chip and 2-chip partitions, different KV page sizes,
// a second (encoder) model only half the fleet deploys, and near/far
// LinkModels — under every built-in RoutingPolicy at IDENTICAL offered
// load (same arrivals, prompts, decode lengths, deadlines).
//
// Round-robin is the blind baseline: it spreads requests by count, so
// the 2-chip nodes (whose per-request service demand is higher) build
// queues and miss deadlines. Cost-estimate-aware routing compares nodes
// in cycles (backlog + this request's cost on that node + the link
// round trip) and prefix-affinity additionally steers the four repeated
// system prompts to the nodes already holding their CoW pages. The CI
// gate requires cost_aware (or prefix_affinity) to beat round_robin on
// fleet-level deadline misses, every stream to stay bit-exact against a
// dedicated engine, and the routing conservation counters to hold.
//
// Per-node tracers run in sim::Tracer::counters_only() mode — the
// simulator fast path this fleet size exists to exercise: thousands of
// engine spans aggregate at O(1) per record with zero Span allocations.
//
// --json <path> writes the machine-readable result used by the CI
// perf-regression gate (tools/check_bench_regression.py compares it
// against bench/baselines/fleet_baseline.json). Stable schema:
//
//   {
//     "schema": "distmcu.fleet.v1",
//     "freq_hz": F,
//     "nodes": [{"name": "...", "chips": n, "models": ["..."],
//                "page_tokens": n, "link_latency_cycles": n,
//                "link_cycles_per_byte": x}],
//     "requests": n,            // offered per policy (identical load)
//     "policies": [
//       {"policy": "round_robin" | "join_shortest_queue" |
//                  "cost_aware" | "prefix_affinity",
//        "offered": n, "placed": n, "rejected": n,
//        "routed": n, "misrouted": n, "completed": n, "shed": n,
//        "slo_requests": n, "deadline_misses": n, "miss_rate": x,
//        "request_transfer_cycles": n, "response_transfer_cycles": n,
//        "transfer_bytes": n, "makespan_cycles": n,
//        "prefix_hits": n, "prefix_shared_tokens": n,
//        "bit_exact": true, "conservation_ok": true,
//        "per_node": [{"name": "...", "attempts": n, "placed": n,
//                      "completed": n, "rejected": n,
//                      "link_rejected": n, "total_cycles": n,
//                      "sched_spans": n}]}],
//     "round_robin_misses": n, "cost_aware_misses": n,
//     "prefix_affinity_misses": n, "join_shortest_queue_misses": n
//   }
//
// Integer fields are exact simulated cycles/counts; doubles are emitted
// with enough digits to round-trip. Additive fields may appear in later
// versions; consumers must key on "schema" and ignore unknown keys.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <tuple>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fleet/router.hpp"
#include "runtime/batched_engine.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/model_registry.hpp"
#include "sim/tracer.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace distmcu;

namespace {

constexpr int kRequests = 800;  // per policy; 4 policies = 3200 routed
constexpr int kPromptLen = 12;
constexpr int kGroups = 16;  // distinct system prompts (> node count)
constexpr std::uint64_t kSeed = 0xf1ee7;

/// Decoder deployment: invariant-suite-sized Transformer blocks so the
/// functional numerics stay fast at fleet request counts.
model::TransformerConfig llama_cfg() {
  auto cfg = model::TransformerConfig::tiny_llama_42m();
  cfg.name = "tinyllama";
  cfg.embed_dim = 32;
  cfg.ffn_dim = 64;
  cfg.num_heads = 4;
  cfg.head_dim = 8;
  cfg.num_layers = 2;
  cfg.vocab_size = 128;
  cfg.ar_context = 64;
  cfg.prompt_len = kPromptLen;
  cfg.validate();
  return cfg;
}

/// Encoder-style deployment (prefill-only requests) that only the
/// 4-chip half of the fleet deploys — exercises per-model eligibility.
model::TransformerConfig bert_cfg() {
  auto cfg = llama_cfg();
  cfg.name = "tinybert";
  cfg.ffn_dim = 96;
  cfg.ar_context = 16;
  cfg.mask = model::MaskKind::bidirectional;
  cfg.validate();
  return cfg;
}

/// kGroups distinct system prompts; every decoder request opens with
/// one, so each group's CoW pages live on whichever nodes served it —
/// more groups than nodes, so placement decides cache locality.
std::vector<int> group_prompt(int group) {
  std::vector<int> p;
  p.reserve(kPromptLen);
  for (int i = 0; i < kPromptLen; ++i) {
    p.push_back(1 + (group * 31 + i * 7) % 127);
  }
  return p;
}

struct FleetRequest {
  std::string model;
  int group = 0;  // prompt group (decoder) / prompt variant (encoder)
  int new_tokens = 0;
  Cycles at = 0;
  runtime::SloSpec slo;
};

/// The identical offered load every policy replays.
std::vector<FleetRequest> make_workload() {
  util::Rng rng(kSeed);
  std::vector<FleetRequest> reqs;
  reqs.reserve(kRequests);
  Cycles t = 0;
  for (int i = 0; i < kRequests; ++i) {
    // Bursty arrivals: exponential-ish interarrival keeps queues alive
    // without saturating the fleet outright.
    const double u = rng.next_double();
    t += static_cast<Cycles>(85'000.0 * -std::log(1.0 - u));
    FleetRequest r;
    r.at = t;
    if (rng.next_below(4) == 0) {
      r.model = "tinybert";
      r.group = static_cast<int>(rng.next_below(kGroups));
      r.new_tokens = 0;
      r.slo = {0, 2'200'000};
    } else {
      r.model = "tinyllama";
      r.group = static_cast<int>(rng.next_below(kGroups));
      r.new_tokens = 4 + static_cast<int>(rng.next_below(6));
      r.slo = {0, 3'000'000};
    }
    reqs.push_back(std::move(r));
  }
  return reqs;
}

struct NodeSpec {
  std::string name;
  int chips = 0;
  bool has_bert = false;
  int page_tokens = 0;
  int kv_pages = 0;
  fleet::LinkModel link;
};

std::vector<NodeSpec> fleet_spec() {
  const fleet::LinkModel near{.latency_cycles = 2'000, .cycles_per_byte = 0.5};
  const fleet::LinkModel far{.latency_cycles = 12'000, .cycles_per_byte = 3.0};
  std::vector<NodeSpec> spec;
  for (int i = 0; i < 4; ++i) {
    spec.push_back({"fast" + std::to_string(i), 4, true, 4, 48, near});
  }
  for (int i = 0; i < 4; ++i) {
    spec.push_back({"slow" + std::to_string(i), 2, false, 8, 24, far});
  }
  return spec;
}

struct PolicyResult {
  std::string policy;
  fleet::FleetStats stats;
  bool bit_exact = true;
  bool conservation_ok = true;
  int prefix_hits = 0;  // summed over nodes
  long long prefix_shared_tokens = 0;
  std::vector<std::size_t> node_sched_spans;  // counters-only tracer records
};

/// Memoized dedicated-engine reference streams, keyed by the serving
/// session (numerics depend on the partition) and the request shape.
using SoloKey = std::tuple<const runtime::InferenceSession*, int, int, int>;

const std::vector<int>& solo_tokens(
    std::map<SoloKey, runtime::GenerationResult>& memo,
    const runtime::InferenceSession& s, bool bert, int group,
    int new_tokens) {
  const SoloKey key{&s, bert ? 1 : 0, group, new_tokens};
  auto it = memo.find(key);
  if (it == memo.end()) {
    it = memo.emplace(key, s.generate(group_prompt(group), new_tokens)).first;
  }
  return it->second.tokens;
}

PolicyResult run_policy(fleet::RoutePolicy which,
                        const std::vector<FleetRequest>& workload,
                        const std::vector<NodeSpec>& spec,
                        const runtime::InferenceSession& llama4,
                        const runtime::InferenceSession& llama2,
                        const runtime::InferenceSession& bert4,
                        std::map<SoloKey, runtime::GenerationResult>& memo) {
  PolicyResult out;
  out.policy = fleet::route_policy_name(which);

  // Fresh engines per policy so every policy sees a cold fleet. The
  // counters-only tracers are the simulator fast path under test: no
  // span buffering, per-node totals still exact.
  std::vector<sim::Tracer> tracers;
  tracers.reserve(spec.size());
  for (std::size_t i = 0; i < spec.size(); ++i) {
    tracers.push_back(sim::Tracer::counters_only());
  }
  std::vector<runtime::ModelRegistry> regs(spec.size());
  std::vector<std::unique_ptr<runtime::BatchedEngine>> engines;
  fleet::Router router(fleet::make_routing_policy(which));
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const NodeSpec& n = spec[i];
    const auto& llama = n.chips == 4 ? llama4 : llama2;
    (void)regs[i].add(llama, "tinyllama", /*prefill_chunk_tokens=*/4,
                      /*kv_quota=*/n.has_bert ? n.kv_pages * 3 / 4
                                              : n.kv_pages);
    if (n.has_bert) {
      (void)regs[i].add(bert4, "tinybert", /*prefill_chunk_tokens=*/4,
                        /*kv_quota=*/n.kv_pages / 4);
    }
    engines.push_back(std::make_unique<runtime::BatchedEngine>(
        regs[i],
        runtime::BatchedEngine::MultiOptions{
            .total_kv_slots = n.kv_pages,
            .max_pending = 24,
            .kv_page_tokens = n.page_tokens,
            .prefix_sharing = true},
        &tracers[i]));
    (void)router.add_node(*engines.back(), n.link, n.name);
  }

  // Identical offered load: replay the workload verbatim.
  for (const FleetRequest& r : workload) {
    (void)router.submit(r.model, group_prompt(r.group), r.new_tokens, r.slo,
                        r.at);
  }
  const auto& finished = router.run_to_completion();

  // Every routed stream must match a dedicated single-request engine on
  // the same session — routing decides placement, never content.
  for (const fleet::FleetResult& f : finished) {
    const NodeSpec& n = spec[static_cast<std::size_t>(f.node)];
    const bool bert = f.result.model == 1;  // registry order: llama, bert
    const auto& session = bert ? bert4 : (n.chips == 4 ? llama4 : llama2);
    // Recover the request's shape from its stream (prompt + generated).
    const int new_tokens = f.result.gen.generated;
    int group = -1;
    for (int g = 0; g < kGroups; ++g) {
      const auto p = group_prompt(g);
      if (std::equal(p.begin(), p.end(), f.result.gen.tokens.begin())) {
        group = g;
        break;
      }
    }
    if (group < 0 ||
        f.result.gen.tokens !=
            solo_tokens(memo, session, bert, group, new_tokens)) {
      out.bit_exact = false;
    }
  }

  out.stats = router.stats();
  const fleet::FleetStats& s = out.stats;
  bool ok = s.offered == s.placed + s.rejected &&
            s.routed == static_cast<std::uint64_t>(s.placed) + s.misrouted &&
            s.placed == s.completed + s.shed &&
            static_cast<int>(finished.size()) == s.completed;
  std::uint64_t node_attempt_sum = 0;
  for (const auto& pn : s.per_node) {
    node_attempt_sum += pn.attempts;
    if (pn.attempts != static_cast<std::uint64_t>(pn.placed) +
                           static_cast<std::uint64_t>(pn.link_rejected) +
                           static_cast<std::uint64_t>(pn.serving.rejected)) {
      ok = false;
    }
  }
  if (node_attempt_sum != s.routed) ok = false;
  out.conservation_ok = ok;
  for (const auto& pn : s.per_node) {
    out.prefix_hits += pn.serving.prefix_hits;
    out.prefix_shared_tokens += pn.serving.prefix_shared_tokens;
  }

  for (const sim::Tracer& t : tracers) {
    util::check(t.spans().empty() && !t.buffering_spans(),
                "counters-only tracer buffered spans");
    out.node_sched_spans.push_back(t.recorded_spans());
  }
  return out;
}

void write_json(const std::string& path, double freq_hz,
                const std::vector<NodeSpec>& spec,
                const std::vector<PolicyResult>& results) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot open --json path " << path << "\n";
    std::exit(2);
  }
  os.precision(17);
  os << "{\n  \"schema\": \"distmcu.fleet.v1\",\n"
     << "  \"freq_hz\": " << freq_hz << ",\n  \"nodes\": [";
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const NodeSpec& n = spec[i];
    os << (i == 0 ? "" : ",") << "\n    {\"name\": \""
       << bench::json_escape(n.name) << "\", \"chips\": " << n.chips
       << ", \"models\": [\"tinyllama\""
       << (n.has_bert ? ", \"tinybert\"" : "") << "]"
       << ", \"page_tokens\": " << n.page_tokens
       << ", \"link_latency_cycles\": " << n.link.latency_cycles
       << ", \"link_cycles_per_byte\": " << n.link.cycles_per_byte << "}";
  }
  os << "\n  ],\n  \"requests\": " << kRequests << ",\n  \"policies\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PolicyResult& r = results[i];
    const fleet::FleetStats& s = r.stats;
    os << (i == 0 ? "" : ",") << "\n    {\"policy\": \""
       << bench::json_escape(r.policy) << "\""
       << ", \"offered\": " << s.offered << ", \"placed\": " << s.placed
       << ", \"rejected\": " << s.rejected << ", \"routed\": " << s.routed
       << ", \"misrouted\": " << s.misrouted
       << ", \"completed\": " << s.completed << ", \"shed\": " << s.shed
       << ",\n     \"slo_requests\": " << s.slo_requests
       << ", \"deadline_misses\": " << s.deadline_misses
       << ", \"miss_rate\": " << s.deadline_miss_rate()
       << ",\n     \"request_transfer_cycles\": " << s.request_transfer_cycles
       << ", \"response_transfer_cycles\": " << s.response_transfer_cycles
       << ", \"transfer_bytes\": " << s.transfer_bytes
       << ", \"makespan_cycles\": " << s.makespan
       << ",\n     \"prefix_hits\": " << r.prefix_hits
       << ", \"prefix_shared_tokens\": " << r.prefix_shared_tokens
       << ",\n     \"bit_exact\": " << (r.bit_exact ? "true" : "false")
       << ", \"conservation_ok\": "
       << (r.conservation_ok ? "true" : "false") << ",\n     \"per_node\": [";
    for (std::size_t j = 0; j < s.per_node.size(); ++j) {
      const auto& pn = s.per_node[j];
      os << (j == 0 ? "" : ",") << "\n      {\"name\": \""
         << bench::json_escape(pn.name) << "\", \"attempts\": " << pn.attempts
         << ", \"placed\": " << pn.placed
         << ", \"completed\": " << pn.completed
         << ", \"rejected\": " << pn.serving.rejected
         << ", \"link_rejected\": " << pn.link_rejected
         << ", \"total_cycles\": " << pn.serving.total_cycles
         << ", \"sched_spans\": " << r.node_sched_spans[j] << "}";
    }
    os << "\n     ]}";
  }
  os << "\n  ]";
  for (const PolicyResult& r : results) {
    os << ",\n  \"" << r.policy
       << "_misses\": " << r.stats.deadline_misses;
  }
  os << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  const double freq_hz = 500e6;

  const auto workload = make_workload();
  const auto spec = fleet_spec();

  // Sessions are shared across nodes and policies (engines borrow them)
  // — fleet construction stays cheap at any node count.
  const runtime::InferenceSession llama4(llama_cfg(), 4);
  const runtime::InferenceSession llama2(llama_cfg(), 2);
  const runtime::InferenceSession bert4(bert_cfg(), 4);

  std::cout << "Fleet serving — " << kRequests
            << " requests across 8 heterogeneous nodes (4x 4-chip near, "
               "4x 2-chip far), identical offered load per policy\n\n";

  std::map<SoloKey, runtime::GenerationResult> memo;
  std::vector<PolicyResult> results;
  for (const auto which :
       {fleet::RoutePolicy::round_robin,
        fleet::RoutePolicy::join_shortest_queue,
        fleet::RoutePolicy::cost_aware, fleet::RoutePolicy::prefix_affinity}) {
    results.push_back(
        run_policy(which, workload, spec, llama4, llama2, bert4, memo));
  }

  util::Table table({"policy", "placed", "rejected", "misrouted", "completed",
                     "misses", "miss_rate", "prefix_hits", "makespan_mcyc",
                     "transfer_mcyc"});
  for (const PolicyResult& r : results) {
    const fleet::FleetStats& s = r.stats;
    table.row()
        .add(r.policy)
        .add(s.placed)
        .add(s.rejected)
        .add(static_cast<std::uint64_t>(s.misrouted))
        .add(s.completed)
        .add(s.deadline_misses)
        .add(s.deadline_miss_rate(), 3)
        .add(r.prefix_hits)
        .add(static_cast<double>(s.makespan) / 1e6, 2)
        .add(static_cast<double>(util::sat_add(s.request_transfer_cycles,
                                               s.response_transfer_cycles)) /
                 1e6,
             2);
  }
  table.print(std::cout);

  const PolicyResult& rr = results[0];
  const PolicyResult& cost = results[2];
  const PolicyResult& prefix = results[3];
  std::cout << "\nround_robin misses " << rr.stats.deadline_misses
            << "; cost_aware " << cost.stats.deadline_misses
            << "; prefix_affinity " << prefix.stats.deadline_misses
            << " at identical offered load.\n";

  // --- self-gate ---------------------------------------------------------
  bool ok = true;
  for (const PolicyResult& r : results) {
    if (!r.bit_exact) {
      std::cout << "FAIL: " << r.policy
                << " streams diverged from the dedicated engine\n";
      ok = false;
    }
    if (!r.conservation_ok) {
      std::cout << "FAIL: " << r.policy
                << " routing conservation counters broke\n";
      ok = false;
    }
    if (r.stats.completed == 0) {
      std::cout << "FAIL: " << r.policy << " completed nothing\n";
      ok = false;
    }
  }
  if (prefix.prefix_hits <= rr.prefix_hits) {
    std::cout << "FAIL: prefix_affinity prefix hits " << prefix.prefix_hits
              << " not above round_robin's " << rr.prefix_hits
              << " — locality routing is not concentrating groups\n";
    ok = false;
  }
  const bool informed_beats_rr =
      cost.stats.deadline_misses < rr.stats.deadline_misses ||
      prefix.stats.deadline_misses < rr.stats.deadline_misses;
  if (!informed_beats_rr) {
    std::cout << "FAIL: neither cost_aware (" << cost.stats.deadline_misses
              << ") nor prefix_affinity (" << prefix.stats.deadline_misses
              << ") beat round_robin (" << rr.stats.deadline_misses
              << ") on deadline misses\n";
    ok = false;
  }

  std::cout << "\nCSV:\n";
  table.write_csv(std::cout);

  if (!json_path.empty()) {
    write_json(json_path, freq_hz, spec, results);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return ok ? 0 : 1;
}
